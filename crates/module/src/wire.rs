//! A compact, non-self-describing binary object format built on serde.
//!
//! The permitted dependency set contains `serde` but no ready-made binary
//! format crate, so this module implements a minimal bincode-style codec:
//! fixed-width little-endian scalars, `u64` length prefixes for sequences,
//! maps, strings and byte buffers, a one-byte tag for `Option`, and a
//! `u32` variant index for enums. Struct fields are written in declaration
//! order with no names — the schema is the Rust type itself.
//!
//! # Hostile input
//!
//! Module images cross a trust boundary: a guest hands arbitrary bytes to
//! `dlopen` and the runtime must reject them without crashing, hanging, or
//! over-allocating. The decoder therefore enforces a [`DecodeLimits`]
//! budget (input size, per-collection length, recursion depth, cumulative
//! allocation), validates every length prefix against the bytes actually
//! remaining before allocating, and never panics on any input. Every
//! [`WireError`] carries the byte offset and the field path at which
//! decoding failed so rejected images are diagnosable.
//!
//! One deliberate trade-off: a sequence or map length prefix must not
//! exceed the number of input bytes remaining. Since every element of the
//! types used on the wire occupies at least one byte this rejects only
//! hostile prefixes, but it does mean collections of zero-sized elements
//! (e.g. `Vec<()>`) longer than the remaining input do not round-trip —
//! the same restriction bincode imposes, and the price of making a 16-byte
//! image claiming 2^60 elements fail in O(1).

use std::fmt::{self, Write as _};

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

/// Resource budget enforced while decoding untrusted bytes.
///
/// [`from_bytes`] uses [`DecodeLimits::default`], which is effectively
/// unlimited except for a generous recursion cap (decoding trusted,
/// self-produced images must never get slower or stricter). The admission
/// path for guest-supplied images uses [`DecodeLimits::admission`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeLimits {
    /// Maximum total input size in bytes; longer inputs are rejected
    /// before any decoding starts.
    pub max_input_bytes: usize,
    /// Maximum length accepted from any single sequence/map/string/bytes
    /// length prefix.
    pub max_len: usize,
    /// Maximum nesting depth of sequences, maps, tuples/structs, enums
    /// and `Some(..)` options. Bounds stack use on adversarial nesting.
    pub max_depth: usize,
    /// Maximum cumulative bytes of collection payload a single decode may
    /// claim (the sum of all length prefixes).
    pub max_alloc: usize,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        DecodeLimits {
            max_input_bytes: usize::MAX,
            max_len: usize::MAX,
            max_depth: 512,
            max_alloc: usize::MAX,
        }
    }
}

impl DecodeLimits {
    /// The budget applied to guest-supplied module images at admission.
    ///
    /// Generous relative to any real module this toolchain emits (the
    /// largest workload image is well under a megabyte) but small enough
    /// that a hostile image cannot make the runtime allocate or recurse
    /// unreasonably.
    #[must_use]
    pub const fn admission() -> Self {
        DecodeLimits {
            max_input_bytes: 16 << 20,
            max_len: 1 << 20,
            max_depth: 64,
            max_alloc: 64 << 20,
        }
    }
}

/// What class of failure a [`WireError`] reports.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireErrorKind {
    /// Structurally invalid bytes: truncation, bad tags, invalid UTF-8,
    /// trailing garbage, or a length prefix larger than the remaining
    /// input.
    Malformed,
    /// A [`DecodeLimits`] budget axis was exceeded.
    LimitExceeded {
        /// Which budget axis: `"input-bytes"`, `"length"`, `"depth"` or
        /// `"alloc"`.
        which: &'static str,
        /// The configured limit.
        limit: u64,
        /// The value that exceeded it.
        actual: u64,
    },
}

/// Errors produced while encoding or decoding.
///
/// Decode errors carry the byte offset at which decoding stopped and the
/// field path (e.g. `Module.functions[2].sig`) being decoded; encode
/// errors carry neither.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireError {
    kind: WireErrorKind,
    message: String,
    offset: Option<usize>,
    context: String,
}

impl WireError {
    fn new(msg: impl Into<String>) -> Self {
        WireError {
            kind: WireErrorKind::Malformed,
            message: msg.into(),
            offset: None,
            context: String::new(),
        }
    }

    fn limit(which: &'static str, limit: u64, actual: u64) -> Self {
        WireError {
            kind: WireErrorKind::LimitExceeded { which, limit, actual },
            message: format!("{which} limit exceeded: {actual} > {limit}"),
            offset: None,
            context: String::new(),
        }
    }

    /// Attaches an offset and context unless already present (errors made
    /// by `serde`'s `Error::custom` have neither; the top-level decode
    /// entry point patches them in from the frozen decoder state).
    fn located(mut self, offset: usize, context: String) -> Self {
        if self.offset.is_none() {
            self.offset = Some(offset);
            self.context = context;
        }
        self
    }

    /// The failure class.
    pub fn kind(&self) -> &WireErrorKind {
        &self.kind
    }

    /// The byte offset at which decoding stopped, if this is a decode
    /// error.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }

    /// The field path being decoded when the error occurred (may be
    /// empty), e.g. `Module.functions[2].sig`.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// The bare error message, without location.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) if !self.context.is_empty() => {
                write!(f, "wire format error at byte {off} ({}): {}", self.context, self.message)
            }
            Some(off) => write!(f, "wire format error at byte {off}: {}", self.message),
            None => write!(f, "wire format error: {}", self.message),
        }
    }
}

impl std::error::Error for WireError {}

impl ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::new(msg.to_string())
    }
}

impl de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::new(msg.to_string())
    }
}

/// Serializes a value to bytes.
///
/// # Errors
///
/// Returns a [`WireError`] for data the format cannot represent (e.g.
/// sequences of unknown length).
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut ser = Encoder { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserializes a value from bytes produced by [`to_bytes`], with the
/// default (effectively unlimited) budget.
///
/// # Errors
///
/// Returns a [`WireError`] on truncated or malformed input, or if trailing
/// bytes remain.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, WireError> {
    from_bytes_limited(bytes, &DecodeLimits::default())
}

/// Deserializes a value from untrusted bytes under an explicit
/// [`DecodeLimits`] budget.
///
/// Never panics: any input either decodes to a value or returns a
/// [`WireError`] carrying the byte offset and field path of the failure.
///
/// # Errors
///
/// [`WireErrorKind::Malformed`] for structurally invalid input;
/// [`WireErrorKind::LimitExceeded`] when a budget axis is exhausted.
pub fn from_bytes_limited<T: DeserializeOwned>(
    bytes: &[u8],
    limits: &DecodeLimits,
) -> Result<T, WireError> {
    if bytes.len() > limits.max_input_bytes {
        return Err(WireError::limit(
            "input-bytes",
            limits.max_input_bytes as u64,
            bytes.len() as u64,
        ));
    }
    let mut de = Decoder {
        input: bytes,
        pos: 0,
        limits: *limits,
        depth: 0,
        alloc: 0,
        path: Vec::new(),
    };
    match T::deserialize(&mut de) {
        Ok(value) => {
            if de.pos != bytes.len() {
                return Err(WireError::new(format!(
                    "{} trailing bytes after value",
                    bytes.len() - de.pos
                ))
                .located(de.pos, String::new()));
            }
            Ok(value)
        }
        // The path is only unwound on success, so on failure it still
        // names the field being decoded; `pos` is frozen at the failure.
        Err(e) => Err(e.located(de.pos, render_path(&de.path))),
    }
}

struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

impl ser::Serializer for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), WireError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), WireError> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or_else(|| WireError::new("sequences must have a known length"))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or_else(|| WireError::new("maps must have a known length"))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! forward_compound {
    ($trait:path, $method:ident $(, $key:ident)?) => {
        impl $trait for &mut Encoder {
            type Ok = ();
            type Error = WireError;
            $(fn $key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
                key.serialize(&mut **self)
            })?
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), WireError> {
                Ok(())
            }
        }
    };
}

forward_compound!(ser::SerializeSeq, serialize_element);
forward_compound!(ser::SerializeTuple, serialize_element);
forward_compound!(ser::SerializeTupleStruct, serialize_field);
forward_compound!(ser::SerializeTupleVariant, serialize_field);
forward_compound!(ser::SerializeMap, serialize_value, serialize_key);

impl ser::SerializeStruct for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

/// A segment of the field path the decoder is currently inside.
#[derive(Clone, Copy, Debug)]
enum Seg {
    Name(&'static str),
    Index(usize),
}

fn render_path(path: &[Seg]) -> String {
    let mut s = String::new();
    for seg in path {
        match seg {
            Seg::Name(n) => {
                if !s.is_empty() {
                    s.push('.');
                }
                s.push_str(n);
            }
            Seg::Index(i) => {
                let _ = write!(s, "[{i}]");
            }
        }
    }
    s
}

struct Decoder<'de> {
    input: &'de [u8],
    pos: usize,
    limits: DecodeLimits,
    depth: usize,
    alloc: usize,
    path: Vec<Seg>,
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.input.len())
            .ok_or_else(|| WireError::new("unexpected end of input"))?;
        let s = &self.input[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?
            .try_into()
            .map_err(|_| WireError::new("internal: fixed-width slice size mismatch"))
    }

    /// Reads a `u64` length prefix and validates it against the budget and
    /// the bytes remaining, charging it to the allocation budget.
    fn take_len(&mut self) -> Result<usize, WireError> {
        let len = u64::from_le_bytes(self.take_array::<8>()?);
        let len = usize::try_from(len).map_err(|_| WireError::new("length overflows usize"))?;
        if len > self.limits.max_len {
            return Err(WireError::limit("length", self.limits.max_len as u64, len as u64));
        }
        // Every element of the types used on the wire occupies at least
        // one byte, so a prefix beyond the remaining input is hostile —
        // reject it before allocating or looping.
        let remaining = self.input.len() - self.pos;
        if len > remaining {
            return Err(WireError::new(format!(
                "length prefix {len} exceeds {remaining} remaining bytes"
            )));
        }
        self.alloc = self.alloc.saturating_add(len);
        if self.alloc > self.limits.max_alloc {
            return Err(WireError::limit(
                "alloc",
                self.limits.max_alloc as u64,
                self.alloc as u64,
            ));
        }
        Ok(len)
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array::<4>()?))
    }

    fn enter(&mut self) -> Result<(), WireError> {
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            return Err(WireError::limit(
                "depth",
                self.limits.max_depth as u64,
                self.depth as u64,
            ));
        }
        Ok(())
    }

    fn exit(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Decodes a fixed-arity compound (tuple, struct, tuple/struct enum
    /// variant), tracking field names in the path when known.
    fn tuple_like<V: Visitor<'de>>(
        &mut self,
        len: usize,
        fields: Option<&'static [&'static str]>,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.enter()?;
        let r = visitor.visit_seq(Counted { de: self, remaining: len, index: 0, fields });
        if r.is_ok() {
            self.exit();
        }
        r
    }
}

macro_rules! de_scalar {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            visitor.$visit(<$ty>::from_le_bytes(self.take_array::<$n>()?))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::new("format is not self-describing"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(WireError::new(format!("invalid bool byte {b}"))),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i8(self.take(1)?[0] as i8)
    }
    de_scalar!(deserialize_i16, visit_i16, i16, 2);
    de_scalar!(deserialize_i32, visit_i32, i32, 4);
    de_scalar!(deserialize_i64, visit_i64, i64, 8);
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u8(self.take(1)?[0])
    }
    de_scalar!(deserialize_u16, visit_u16, u16, 2);
    de_scalar!(deserialize_u32, visit_u32, u32, 4);
    de_scalar!(deserialize_u64, visit_u64, u64, 8);
    de_scalar!(deserialize_f32, visit_f32, f32, 4);
    de_scalar!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let v = self.take_u32()?;
        visitor.visit_char(char::from_u32(v).ok_or_else(|| WireError::new("invalid char"))?)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::new("invalid utf-8"))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => {
                self.enter()?;
                let r = visitor.visit_some(&mut *self);
                if r.is_ok() {
                    self.exit();
                }
                r
            }
            b => Err(WireError::new(format!("invalid option tag {b}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.enter()?;
        let len = self.take_len()?;
        let r = visitor.visit_seq(Counted { de: self, remaining: len, index: 0, fields: None });
        if r.is_ok() {
            self.exit();
        }
        r
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.tuple_like(len, None, visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.tuple_like(len, None, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.enter()?;
        let len = self.take_len()?;
        let r = visitor.visit_map(Counted { de: self, remaining: len, index: 0, fields: None });
        if r.is_ok() {
            self.exit();
        }
        r
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        // Root the error context at the top-level type name; nested
        // structs are already named by the field that holds them.
        if self.path.is_empty() {
            self.path.push(Seg::Name(name));
        }
        self.tuple_like(fields.len(), Some(fields), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.enter()?;
        let r = visitor.visit_enum(EnumAccess { de: self, variants });
        if r.is_ok() {
            self.exit();
        }
        r
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::new("identifiers are not encoded"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::new("cannot skip values in a non-self-describing format"))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    remaining: usize,
    index: usize,
    fields: Option<&'static [&'static str]>,
}

impl Counted<'_, '_> {
    fn seg(&self) -> Seg {
        match self.fields.and_then(|f| f.get(self.index)) {
            Some(name) => Seg::Name(name),
            None => Seg::Index(self.index),
        }
    }
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        self.de.path.push(self.seg());
        self.index += 1;
        let r = seed.deserialize(&mut *self.de);
        if r.is_ok() {
            self.de.path.pop();
        }
        r.map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        self.de.path.push(Seg::Index(self.index));
        self.index += 1;
        let r = seed.deserialize(&mut *self.de);
        if r.is_ok() {
            self.de.path.pop();
        }
        r.map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, WireError> {
        self.de.path.push(Seg::Index(self.index.saturating_sub(1)));
        let r = seed.deserialize(&mut *self.de);
        if r.is_ok() {
            self.de.path.pop();
        }
        r
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
    variants: &'static [&'static str],
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), WireError> {
        let index = self.de.take_u32()?;
        let value = seed.deserialize(index.into_deserializer())?;
        match self.variants.get(index as usize) {
            Some(name) => self.de.path.push(Seg::Name(name)),
            None => self.de.path.push(Seg::Index(index as usize)),
        }
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> Result<(), WireError> {
        self.de.path.pop();
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, WireError> {
        let r = seed.deserialize(&mut *self.de);
        if r.is_ok() {
            self.de.path.pop();
        }
        r
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        let r = self.de.tuple_like(len, None, visitor);
        if r.is_ok() {
            self.de.path.pop();
        }
        r
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        let r = self.de.tuple_like(fields.len(), Some(fields), visitor);
        if r.is_ok() {
            self.de.path.pop();
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::{BTreeMap, HashMap};

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Sample {
        Unit,
        Newtype(u32),
        Tuple(i8, String),
        Struct { a: bool, b: Vec<u64> },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        name: String,
        values: Vec<Sample>,
        table: BTreeMap<String, i64>,
        hash: HashMap<u32, String>,
        opt: Option<f64>,
        bytes: Vec<u8>,
    }

    fn round_trip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(v: &T) {
        let bytes = to_bytes(v).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&true);
        round_trip(&-5i64);
        round_trip(&u64::MAX);
        round_trip(&3.25f64);
        round_trip(&"hello".to_string());
    }

    #[test]
    fn enums_round_trip() {
        round_trip(&Sample::Unit);
        round_trip(&Sample::Newtype(7));
        round_trip(&Sample::Tuple(-1, "x".into()));
        round_trip(&Sample::Struct { a: true, b: vec![1, 2, 3] });
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut hash = HashMap::new();
        hash.insert(9, "nine".to_string());
        round_trip(&Nested {
            name: "n".into(),
            values: vec![Sample::Unit, Sample::Newtype(1)],
            table: [("k".to_string(), -3i64)].into_iter().collect(),
            hash,
            opt: Some(1.5),
            bytes: vec![0, 255, 128],
        });
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = to_bytes(&Sample::Tuple(1, "long string".into())).unwrap();
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Sample>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn invalid_variant_index_fails() {
        let bytes = 99u32.to_le_bytes().to_vec();
        assert!(from_bytes::<Sample>(&bytes).is_err());
    }

    #[test]
    fn errors_carry_offset_and_field_path() {
        let v = Nested {
            name: "n".into(),
            values: vec![Sample::Unit, Sample::Tuple(3, "x".into())],
            table: BTreeMap::new(),
            hash: HashMap::new(),
            opt: None,
            bytes: vec![],
        };
        let bytes = to_bytes(&v).unwrap();
        // Cut inside `values[1]`: after name (8+1) + values len (8) +
        // values[0] tag (4) + values[1] tag (4) = 25, cut mid-payload.
        let err = from_bytes::<Nested>(&bytes[..26]).unwrap_err();
        assert!(err.offset().is_some(), "decode errors must carry an offset: {err}");
        let ctx = err.context();
        assert!(
            ctx.contains("values[1]"),
            "context should name the failing field path, got {ctx:?} ({err})"
        );
        assert!(ctx.starts_with("Nested"), "context should be rooted at the type: {ctx:?}");
        let msg = err.to_string();
        assert!(msg.contains("at byte"), "Display should include the offset: {msg}");
    }

    #[test]
    fn huge_length_prefix_fails_fast_without_allocation() {
        // 8-byte prefix claiming u64::MAX elements, nothing behind it.
        let bytes = u64::MAX.to_le_bytes();
        let err = from_bytes::<Vec<u64>>(&bytes).unwrap_err();
        assert_eq!(*err.kind(), WireErrorKind::Malformed, "{err}");

        // Same for a string length prefix.
        let err = from_bytes::<String>(&bytes).unwrap_err();
        assert_eq!(*err.kind(), WireErrorKind::Malformed, "{err}");
    }

    #[test]
    fn input_bytes_limit_boundary() {
        let v = vec![1u8, 2, 3];
        let bytes = to_bytes(&v).unwrap();
        let mut limits = DecodeLimits { max_input_bytes: bytes.len(), ..DecodeLimits::default() };
        assert_eq!(from_bytes_limited::<Vec<u8>>(&bytes, &limits).unwrap(), v);
        limits.max_input_bytes = bytes.len() - 1;
        let err = from_bytes_limited::<Vec<u8>>(&bytes, &limits).unwrap_err();
        match err.kind() {
            WireErrorKind::LimitExceeded { which: "input-bytes", .. } => {}
            k => panic!("expected input-bytes limit, got {k:?}"),
        }
    }

    #[test]
    fn seq_length_limit_boundary() {
        let v = vec![7u8; 16];
        let bytes = to_bytes(&v).unwrap();
        let mut limits = DecodeLimits { max_len: 16, ..DecodeLimits::default() };
        assert_eq!(from_bytes_limited::<Vec<u8>>(&bytes, &limits).unwrap(), v);
        limits.max_len = 15;
        let err = from_bytes_limited::<Vec<u8>>(&bytes, &limits).unwrap_err();
        match err.kind() {
            WireErrorKind::LimitExceeded { which: "length", limit: 15, actual: 16 } => {}
            k => panic!("expected length limit, got {k:?}"),
        }
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Tree {
        Leaf,
        Node(Box<Tree>),
    }

    fn tree(depth: usize) -> Tree {
        let mut t = Tree::Leaf;
        for _ in 0..depth {
            t = Tree::Node(Box::new(t));
        }
        t
    }

    #[test]
    fn depth_limit_boundary() {
        // tree(9) nests 10 enums (9 Nodes + the Leaf).
        let bytes = to_bytes(&tree(9)).unwrap();
        let mut limits = DecodeLimits { max_depth: 10, ..DecodeLimits::default() };
        assert_eq!(from_bytes_limited::<Tree>(&bytes, &limits).unwrap(), tree(9));
        limits.max_depth = 9;
        let err = from_bytes_limited::<Tree>(&bytes, &limits).unwrap_err();
        match err.kind() {
            WireErrorKind::LimitExceeded { which: "depth", limit: 9, actual: 10 } => {}
            k => panic!("expected depth limit, got {k:?}"),
        }
    }

    #[test]
    fn alloc_limit_is_cumulative_across_collections() {
        // Two 8-byte strings: 16 bytes of claimed payload in total.
        let v = ("aaaaaaaa".to_string(), "bbbbbbbb".to_string());
        let bytes = to_bytes(&v).unwrap();
        let mut limits = DecodeLimits { max_alloc: 16, ..DecodeLimits::default() };
        assert_eq!(from_bytes_limited::<(String, String)>(&bytes, &limits).unwrap(), v);
        limits.max_alloc = 15;
        let err = from_bytes_limited::<(String, String)>(&bytes, &limits).unwrap_err();
        match err.kind() {
            WireErrorKind::LimitExceeded { which: "alloc", limit: 15, actual: 16 } => {}
            k => panic!("expected alloc limit, got {k:?}"),
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_stack_overflowed() {
        // A hostile chain of Node tags far beyond the default depth cap:
        // must return LimitExceeded, not blow the stack.
        let mut bytes = Vec::new();
        for _ in 0..100_000 {
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let err = from_bytes::<Tree>(&bytes).unwrap_err();
        match err.kind() {
            WireErrorKind::LimitExceeded { which: "depth", .. } => {}
            k => panic!("expected depth limit, got {k:?}"),
        }
    }

    mod robustness {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn decoding_junk_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = from_bytes::<Nested>(&bytes);
                let _ = from_bytes::<Vec<Sample>>(&bytes);
                let _ = from_bytes::<crate::Module>(&bytes);
                let _ = from_bytes_limited::<crate::Module>(&bytes, &DecodeLimits::admission());
            }

            #[test]
            fn byte_flips_never_decode_into_panics(
                seed in any::<u64>(),
                flip in 0usize..64,
            ) {
                let m = crate::Module::new(format!("m{seed}"));
                let mut bytes = to_bytes(&m).unwrap();
                if !bytes.is_empty() {
                    let i = flip % bytes.len();
                    bytes[i] ^= 0xa5;
                    let _ = from_bytes::<crate::Module>(&bytes);
                    let _ = from_bytes_limited::<crate::Module>(&bytes, &DecodeLimits::admission());
                }
            }
        }
    }
}
