//! A compact, non-self-describing binary object format built on serde.
//!
//! The permitted dependency set contains `serde` but no ready-made binary
//! format crate, so this module implements a minimal bincode-style codec:
//! fixed-width little-endian scalars, `u64` length prefixes for sequences,
//! maps, strings and byte buffers, a one-byte tag for `Option`, and a
//! `u32` variant index for enums. Struct fields are written in declaration
//! order with no names — the schema is the Rust type itself.

use std::fmt;

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

/// Errors produced while encoding or decoding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireError {
    message: String,
}

impl WireError {
    fn new(msg: impl Into<String>) -> Self {
        WireError { message: msg.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire format error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

impl ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::new(msg.to_string())
    }
}

impl de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::new(msg.to_string())
    }
}

/// Serializes a value to bytes.
///
/// # Errors
///
/// Returns a [`WireError`] for data the format cannot represent (e.g.
/// sequences of unknown length).
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut ser = Encoder { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserializes a value from bytes produced by [`to_bytes`].
///
/// # Errors
///
/// Returns a [`WireError`] on truncated or malformed input, or if trailing
/// bytes remain.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, WireError> {
    let mut de = Decoder { input: bytes, pos: 0 };
    let value = T::deserialize(&mut de)?;
    if de.pos != bytes.len() {
        return Err(WireError::new(format!(
            "{} trailing bytes after value",
            bytes.len() - de.pos
        )));
    }
    Ok(value)
}

struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

impl ser::Serializer for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), WireError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), WireError> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or_else(|| WireError::new("sequences must have a known length"))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or_else(|| WireError::new("maps must have a known length"))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! forward_compound {
    ($trait:path, $method:ident $(, $key:ident)?) => {
        impl $trait for &mut Encoder {
            type Ok = ();
            type Error = WireError;
            $(fn $key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
                key.serialize(&mut **self)
            })?
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), WireError> {
                Ok(())
            }
        }
    };
}

forward_compound!(ser::SerializeSeq, serialize_element);
forward_compound!(ser::SerializeTuple, serialize_element);
forward_compound!(ser::SerializeTupleStruct, serialize_field);
forward_compound!(ser::SerializeTupleVariant, serialize_field);
forward_compound!(ser::SerializeMap, serialize_value, serialize_key);

impl ser::SerializeStruct for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

struct Decoder<'de> {
    input: &'de [u8],
    pos: usize,
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.input.len())
            .ok_or_else(|| WireError::new("unexpected end of input"))?;
        let s = &self.input[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn take_len(&mut self) -> Result<usize, WireError> {
        let bytes = self.take(8)?;
        let len = u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
        usize::try_from(len).map_err(|_| WireError::new("length overflows usize"))
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
}

macro_rules! de_scalar {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let bytes = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(bytes.try_into().expect("fixed width")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::new("format is not self-describing"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(WireError::new(format!("invalid bool byte {b}"))),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i8(self.take(1)?[0] as i8)
    }
    de_scalar!(deserialize_i16, visit_i16, i16, 2);
    de_scalar!(deserialize_i32, visit_i32, i32, 4);
    de_scalar!(deserialize_i64, visit_i64, i64, 8);
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u8(self.take(1)?[0])
    }
    de_scalar!(deserialize_u16, visit_u16, u16, 2);
    de_scalar!(deserialize_u32, visit_u32, u32, 4);
    de_scalar!(deserialize_u64, visit_u64, u64, 8);
    de_scalar!(deserialize_f32, visit_f32, f32, 4);
    de_scalar!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let v = self.take_u32()?;
        visitor.visit_char(char::from_u32(v).ok_or_else(|| WireError::new("invalid char"))?)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::new("invalid utf-8"))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(WireError::new(format!("invalid option tag {b}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        visitor.visit_map(Counted { de: self, remaining: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::new("identifiers are not encoded"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::new("cannot skip values in a non-self-describing format"))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), WireError> {
        let index = self.de.take_u32()?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, WireError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        use de::Deserializer;
        self.de.deserialize_tuple(len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        use de::Deserializer;
        self.de.deserialize_tuple(fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::{BTreeMap, HashMap};

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Sample {
        Unit,
        Newtype(u32),
        Tuple(i8, String),
        Struct { a: bool, b: Vec<u64> },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        name: String,
        values: Vec<Sample>,
        table: BTreeMap<String, i64>,
        hash: HashMap<u32, String>,
        opt: Option<f64>,
        bytes: Vec<u8>,
    }

    fn round_trip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(v: &T) {
        let bytes = to_bytes(v).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&true);
        round_trip(&-5i64);
        round_trip(&u64::MAX);
        round_trip(&3.25f64);
        round_trip(&"hello".to_string());
    }

    #[test]
    fn enums_round_trip() {
        round_trip(&Sample::Unit);
        round_trip(&Sample::Newtype(7));
        round_trip(&Sample::Tuple(-1, "x".into()));
        round_trip(&Sample::Struct { a: true, b: vec![1, 2, 3] });
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut hash = HashMap::new();
        hash.insert(9, "nine".to_string());
        round_trip(&Nested {
            name: "n".into(),
            values: vec![Sample::Unit, Sample::Newtype(1)],
            table: [("k".to_string(), -3i64)].into_iter().collect(),
            hash,
            opt: Some(1.5),
            bytes: vec![0, 255, 128],
        });
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = to_bytes(&Sample::Tuple(1, "long string".into())).unwrap();
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Sample>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn invalid_variant_index_fails() {
        let bytes = 99u32.to_le_bytes().to_vec();
        assert!(from_bytes::<Sample>(&bytes).is_err());
    }

    mod robustness {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn decoding_junk_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = from_bytes::<Nested>(&bytes);
                let _ = from_bytes::<Vec<Sample>>(&bytes);
                let _ = from_bytes::<crate::Module>(&bytes);
            }

            #[test]
            fn byte_flips_never_decode_into_panics(
                seed in any::<u64>(),
                flip in 0usize..64,
            ) {
                let m = crate::Module::new(format!("m{seed}"));
                let mut bytes = to_bytes(&m).unwrap();
                if !bytes.is_empty() {
                    let i = flip % bytes.len();
                    bytes[i] ^= 0xa5;
                    let _ = from_bytes::<crate::Module>(&bytes);
                }
            }
        }
    }
}
