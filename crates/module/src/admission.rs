//! Admission of untrusted module images.
//!
//! A guest hands `dlopen` arbitrary bytes; everything the runtime does
//! with them afterwards — linking, verification, table generation —
//! assumes the [`Module`](crate::Module) invariants hold (offsets inside
//! the code/data images, branch metadata pointing at real check
//! sequences, a coherent type environment). [`Module::decode_image`]
//! re-establishes those invariants at the trust boundary: it decodes
//! under a [`DecodeLimits`] budget and then structurally validates every
//! offset the loader or verifier will later trust, so downstream code can
//! index without panicking.

use std::fmt;

use mcfi_minic::types::{Type, TypeEnv};

use crate::wire::{self, DecodeLimits, WireError, WireErrorKind};
use crate::{Module, Reloc, RelocKind};

/// Why an untrusted module image was refused admission.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdmissionError {
    /// The image is structurally invalid: undecodable bytes, or decoded
    /// metadata whose offsets do not fit the code/data images. `offset`
    /// is the byte offset of the failure (within the wire image for
    /// decode errors, within the referenced section for structural ones).
    Malformed {
        /// Byte offset of the failure.
        offset: usize,
        /// Human-readable description of what is wrong.
        what: String,
    },
    /// A [`DecodeLimits`] budget axis was exceeded.
    LimitExceeded {
        /// Which axis: `"input-bytes"`, `"length"`, `"depth"` or `"alloc"`.
        which: &'static str,
        /// The configured limit.
        limit: u64,
        /// The offending value.
        actual: u64,
    },
    /// The module's type environment is internally inconsistent (e.g. a
    /// typedef cycle) and cannot be merged into a process.
    TypeEnvInconsistent {
        /// What is inconsistent.
        what: String,
    },
    /// The module decoded and validated but the CFI verifier refused it.
    VerifierReject {
        /// The verifier's first reported violation.
        reason: String,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Malformed { offset, what } => {
                write!(f, "malformed module image at offset {offset}: {what}")
            }
            AdmissionError::LimitExceeded { which, limit, actual } => {
                write!(f, "module image exceeds {which} limit: {actual} > {limit}")
            }
            AdmissionError::TypeEnvInconsistent { what } => {
                write!(f, "inconsistent type environment: {what}")
            }
            AdmissionError::VerifierReject { reason } => {
                write!(f, "verifier rejected module: {reason}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

impl From<WireError> for AdmissionError {
    fn from(e: WireError) -> Self {
        match *e.kind() {
            WireErrorKind::LimitExceeded { which, limit, actual } => {
                AdmissionError::LimitExceeded { which, limit, actual }
            }
            WireErrorKind::Malformed => AdmissionError::Malformed {
                offset: e.offset().unwrap_or(0),
                what: if e.context().is_empty() {
                    e.message().to_string()
                } else {
                    format!("{} (while decoding {})", e.message(), e.context())
                },
            },
        }
    }
}

/// Width in bytes of the immediate a relocation kind patches.
fn reloc_width(kind: &RelocKind) -> usize {
    match kind {
        RelocKind::FuncAbs(_)
        | RelocKind::GlobalAbs(_)
        | RelocKind::GotSlot(_)
        | RelocKind::CodeAbs(_) => 8,
        RelocKind::JumpTable(_) | RelocKind::CallRel(_) => 4,
    }
}

fn malformed(offset: usize, what: impl Into<String>) -> AdmissionError {
    AdmissionError::Malformed { offset, what: what.into() }
}

/// Checks `offset + width <= size`, overflow-safe.
fn check_span(
    offset: usize,
    width: usize,
    size: usize,
    section: &str,
    what: &str,
) -> Result<(), AdmissionError> {
    match offset.checked_add(width) {
        Some(end) if end <= size => Ok(()),
        _ => Err(malformed(
            offset,
            format!("{what} spans [{offset}, {offset}+{width}) beyond {section} size {size}"),
        )),
    }
}

fn check_relocs(relocs: &[Reloc], size: usize, section: &str) -> Result<(), AdmissionError> {
    for (i, r) in relocs.iter().enumerate() {
        let width = reloc_width(&r.kind);
        check_span(r.patch_at, width, size, section, &format!("reloc #{i}"))?;
    }
    Ok(())
}

/// Walks a type checking that every `Named` reference resolves to a
/// non-`Named` head (no typedef cycles) within the environment's fuel.
fn check_type(env: &TypeEnv, ty: &Type, what: &str) -> Result<(), AdmissionError> {
    match ty {
        Type::Named(n) => {
            if env.typedef(n).is_some() && matches!(env.resolve(ty), Type::Named(_)) {
                return Err(AdmissionError::TypeEnvInconsistent {
                    what: format!("typedef `{n}` (in {what}) does not resolve to a concrete type"),
                });
            }
            Ok(())
        }
        Type::Ptr(inner) | Type::Array(inner, _) => check_type(env, inner, what),
        Type::Func(sig) => {
            check_type(env, &sig.ret, what)?;
            for p in &sig.params {
                check_type(env, p, what)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

impl Module {
    /// Structurally validates a decoded module: every offset the loader,
    /// linker or verifier will later trust must fit the image it points
    /// into, branch metadata must be indexable, and the type environment
    /// must be internally consistent.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Malformed`] naming the first inconsistent field,
    /// or [`AdmissionError::TypeEnvInconsistent`] for typedef cycles.
    pub fn validate(&self) -> Result<(), AdmissionError> {
        let code = self.code.len();
        let data = self.data.len();

        for (name, f) in &self.functions {
            // Declarations (size 0) carry no trusted offset.
            if f.size > 0 {
                check_span(f.offset, f.size, code, "code", &format!("function `{name}`"))?;
            }
        }
        for (name, g) in &self.globals {
            check_span(g.offset, g.size, data, "data", &format!("global `{name}`"))?;
        }
        check_relocs(&self.relocs, code, "code")?;
        check_relocs(&self.data_relocs, data, "data")?;

        for (i, b) in self.aux.indirect_branches.iter().enumerate() {
            if b.local_slot as usize != i {
                return Err(malformed(
                    b.check_offset,
                    format!("indirect branch #{i} carries local slot {}", b.local_slot),
                ));
            }
            // The loader patches the 4-byte slot immediate at
            // check_offset + 2, so the whole BaryLoad must be in bounds.
            check_span(b.check_offset, 6, code, "code", &format!("check sequence #{i}"))?;
            if b.branch_offset >= code {
                return Err(malformed(
                    b.branch_offset,
                    format!("indirect branch #{i} is outside the code image (size {code})"),
                ));
            }
        }
        for (i, r) in self.aux.return_sites.iter().enumerate() {
            if r.offset > code {
                return Err(malformed(
                    r.offset,
                    format!("return site #{i} is outside the code image (size {code})"),
                ));
            }
        }
        for (i, t) in self.aux.jump_tables.iter().enumerate() {
            let span = t
                .entries
                .len()
                .checked_mul(8)
                .ok_or_else(|| malformed(t.table_offset, format!("jump table #{i} overflows")))?;
            check_span(t.table_offset, span, code, "code", &format!("jump table #{i}"))?;
            for (j, &e) in t.entries.iter().enumerate() {
                if e >= code {
                    return Err(malformed(
                        e,
                        format!(
                            "jump table #{i} entry #{j} is outside the code image (size {code})"
                        ),
                    ));
                }
            }
        }

        let env = &self.aux.env;
        for (name, f) in &self.functions {
            check_type(env, &Type::Func(f.sig.clone()), &format!("function `{name}`"))?;
        }
        for imp in &self.aux.imports {
            check_type(env, &Type::Func(imp.sig.clone()), &format!("import `{}`", imp.name))?;
        }
        for c in env.composites() {
            for field in &c.fields {
                check_type(env, &field.ty, &format!("composite `{}`", c.name))?;
            }
        }

        Ok(())
    }

    /// Decodes and validates an **untrusted** module image.
    ///
    /// This is the trust-boundary entry point used by the runtime's
    /// `dlopen` path: it decodes under `limits` (never panicking, never
    /// allocating beyond the budget) and then runs [`Module::validate`].
    ///
    /// # Errors
    ///
    /// Any [`AdmissionError`]; the caller is expected to fail the load
    /// and quarantine the image's source.
    pub fn decode_image(bytes: &[u8], limits: &DecodeLimits) -> Result<Self, AdmissionError> {
        let module: Module = wire::from_bytes_limited(bytes, limits)?;
        module.validate()?;
        Ok(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionSym, GlobalSym, IndirectBranchInfo, JumpTableInfo};
    use mcfi_minic::types::FuncType;

    fn int_sig() -> FuncType {
        FuncType { params: vec![], ret: Box::new(Type::Int), variadic: false }
    }

    fn valid_module() -> Module {
        let mut m = Module::new("lib");
        m.code = vec![0x22; 64];
        m.data = vec![0; 32];
        m.functions.insert(
            "f".into(),
            FunctionSym {
                offset: 0,
                size: 16,
                sig: int_sig(),
                is_static: false,
                address_taken: true,
            },
        );
        m.globals.insert("g".into(), GlobalSym { offset: 8, size: 8 });
        m.aux.indirect_branches.push(IndirectBranchInfo {
            local_slot: 0,
            check_offset: 4,
            branch_offset: 12,
            in_function: "f".into(),
            kind: crate::BranchKind::Return { function: "f".into() },
        });
        m.aux.jump_tables.push(JumpTableInfo {
            table_offset: 32,
            entries: vec![0, 4],
            function: "f".into(),
        });
        m
    }

    #[test]
    fn valid_module_is_admitted() {
        let m = valid_module();
        m.validate().unwrap();
        let bytes = m.to_bytes().unwrap();
        Module::decode_image(&bytes, &DecodeLimits::admission()).unwrap();
    }

    #[test]
    fn function_beyond_code_is_rejected() {
        let mut m = valid_module();
        m.functions.get_mut("f").unwrap().size = 65;
        assert!(matches!(m.validate(), Err(AdmissionError::Malformed { .. })));
    }

    #[test]
    fn function_offset_overflow_is_rejected() {
        let mut m = valid_module();
        m.functions.get_mut("f").unwrap().offset = usize::MAX;
        assert!(matches!(m.validate(), Err(AdmissionError::Malformed { .. })));
    }

    #[test]
    fn global_beyond_data_is_rejected() {
        let mut m = valid_module();
        m.globals.get_mut("g").unwrap().offset = 31;
        assert!(matches!(m.validate(), Err(AdmissionError::Malformed { .. })));
    }

    #[test]
    fn reloc_beyond_code_is_rejected() {
        let mut m = valid_module();
        m.relocs.push(Reloc { patch_at: 60, kind: RelocKind::FuncAbs("f".into()) });
        assert!(matches!(m.validate(), Err(AdmissionError::Malformed { .. })));
    }

    #[test]
    fn check_sequence_beyond_code_is_rejected() {
        let mut m = valid_module();
        m.aux.indirect_branches[0].check_offset = 59;
        assert!(matches!(m.validate(), Err(AdmissionError::Malformed { .. })));
    }

    #[test]
    fn branch_slot_mismatch_is_rejected() {
        let mut m = valid_module();
        m.aux.indirect_branches[0].local_slot = 7;
        assert!(matches!(m.validate(), Err(AdmissionError::Malformed { .. })));
    }

    #[test]
    fn jump_table_escape_is_rejected() {
        let mut m = valid_module();
        m.aux.jump_tables[0].entries.push(64);
        assert!(matches!(m.validate(), Err(AdmissionError::Malformed { .. })));
    }

    #[test]
    fn typedef_cycle_is_rejected() {
        let mut m = valid_module();
        m.aux.env.add_typedef("a", Type::Named("b".into())).unwrap();
        m.aux.env.add_typedef("b", Type::Named("a".into())).unwrap();
        *m.functions.get_mut("f").unwrap().sig.ret = Type::Named("a".into());
        assert!(matches!(m.validate(), Err(AdmissionError::TypeEnvInconsistent { .. })));
    }

    #[test]
    fn decode_errors_map_to_admission_errors() {
        let err = Module::decode_image(&[0xde, 0xad], &DecodeLimits::admission()).unwrap_err();
        assert!(matches!(err, AdmissionError::Malformed { .. }), "{err}");

        let huge = vec![0u8; (16 << 20) + 1];
        let err = Module::decode_image(&huge, &DecodeLimits::admission()).unwrap_err();
        assert!(
            matches!(err, AdmissionError::LimitExceeded { which: "input-bytes", .. }),
            "{err}"
        );
    }
}
