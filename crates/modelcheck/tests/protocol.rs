//! Model-checking the ID-table protocol: linearizability, the
//! Tary-before-Bary crash invariant at every schedule point, and
//! liveness, over bounded-exhaustive, random, and crash-site-sweep
//! schedule exploration.
//!
//! Every scenario rebuilds its tables from scratch per execution (the
//! `make` closure), so executions are pure functions of their decision
//! lists and every counterexample replays exactly.

use std::sync::Arc;

use mcfi_modelcheck::{
    crash_sweep, explore, explore_random, fail, replay, ExecOutcome, ExecSpec, ExploreConfig,
    McMutex, McTables, ScheduleTrace, ThreadSpec,
};
use mcfi_tables::sync::MutexOps;
use mcfi_tables::{CheckError, Id, RetryConfig, TablesConfig, ViolationKind};

/// The scenario CFGs: code addresses 8 and 16 are the two targets, Bary
/// slot 0 the one branch. Under the OLD CFG the branch and address 8
/// share ECN 1 while address 16 has ECN 2; the NEW CFG swaps the ECNs
/// and moves the branch to ECN 2. The edge 0→8 is legal in *both* CFGs
/// and the edge 0→16 in *neither*, so a checker may never admit 0→16
/// regardless of where an update is in flight — that is the
/// linearizability oracle in executable form.
const CODE_SIZE: usize = 32;

fn old_tary(addr: u64) -> Option<u32> {
    match addr {
        8 => Some(1),
        16 => Some(2),
        _ => None,
    }
}

fn new_tary(addr: u64) -> Option<u32> {
    match addr {
        8 => Some(2),
        16 => Some(1),
        _ => None,
    }
}

fn fresh_tables_sized(code_size: usize) -> Arc<McTables> {
    let t = Arc::new(McTables::new(TablesConfig { code_size, bary_slots: 1 }));
    // Driver-thread setup: no scheduler registered, every shadow op is
    // a plain pass-through.
    t.update(old_tary, |_| Some(1));
    t
}

fn fresh_tables() -> Arc<McTables> {
    fresh_tables_sized(CODE_SIZE)
}

/// The Fig. 3 phase invariant, checkable at *every* schedule point: the
/// Bary table only ever advances to the current version after the whole
/// Tary table has (Tary phase, barrier, Bary phase). Holds mid-update,
/// mid-repair, and after a crash at any site; violated the moment an
/// updater stamps Bary first.
fn phase_invariant(t: &McTables) -> Result<(), String> {
    let current = t.current_version();
    let bary_advanced = (0..t.bary_len())
        .any(|s| Id::from_word(t.bary_word(s)).is_some_and(|id| id.version() == current));
    if !bary_advanced {
        return Ok(());
    }
    for addr in (0..(t.tary_len() * 4) as u64).step_by(4) {
        if let Some(id) = Id::from_word(t.tary_word(addr)) {
            if id.version() != current {
                return Err(format!(
                    "phase order violated: a Bary slot already carries version {} while \
                     Tary address {addr} still carries {}",
                    current.raw(),
                    id.version().raw(),
                ));
            }
        }
    }
    Ok(())
}

fn invariant_for(t: &Arc<McTables>) -> mcfi_modelcheck::InvariantFn {
    let t = Arc::clone(t);
    Box::new(move || phase_invariant(&t))
}

/// A checker thread body asserting the linearizability oracle for one
/// legal and one illegal edge, with a bounded retry budget so the
/// thread terminates even when the updater has been crash-killed.
fn checker_body(t: Arc<McTables>) -> impl FnOnce() + Send {
    let config = RetryConfig { escalate_after: 2, max_retries: 24 };
    move || {
        match t.check_bounded(0, 8, &config) {
            Ok(_) => {}
            Err(CheckError::Violation(v)) => {
                fail(format!("legal edge 0→8 rejected: {v:?}"));
            }
            // Retry-budget exhaustion is a liveness report, not a
            // protocol violation; the liveness oracle below asserts it
            // cannot happen while the updater stays alive.
            Err(CheckError::Stalled(_)) => {}
        }
        match t.check_bounded(0, 16, &config) {
            Ok(ecn) => fail(format!("forbidden edge 0→16 admitted with ECN {}", ecn.raw())),
            Err(CheckError::Violation(_)) | Err(CheckError::Stalled(_)) => {}
        }
    }
}

/// Like [`checker_body`] but with the paper's unbounded `TxCheck` and a
/// strict liveness stance: with a live (never-crashed) updater the
/// check must terminate (the DFS would report a livelock otherwise) and
/// the illegal edge must produce an ECN-mismatch violation.
fn strict_checker_body(t: Arc<McTables>) -> impl FnOnce() + Send {
    move || {
        match t.check(0, 8) {
            Ok(_) => {}
            Err(v) => fail(format!("legal edge 0→8 rejected: {v:?}")),
        }
        match t.check(0, 16) {
            Ok(ecn) => fail(format!("forbidden edge 0→16 admitted with ECN {}", ecn.raw())),
            Err(v) => {
                if !matches!(v.kind, ViolationKind::EcnMismatch { .. }) {
                    fail(format!("forbidden edge 0→16 rejected for the wrong reason: {v:?}"));
                }
            }
        }
    }
}

fn two_checkers_one_updater(strict: bool, code_size: usize) -> ExecSpec {
    let t = fresh_tables_sized(code_size);
    let (c1, c2, u) = (Arc::clone(&t), Arc::clone(&t), Arc::clone(&t));
    let mk = |arc: Arc<McTables>, name: &str| {
        if strict {
            ThreadSpec::new(name, strict_checker_body(arc))
        } else {
            ThreadSpec::new(name, checker_body(arc))
        }
    };
    let finale_t = Arc::clone(&t);
    ExecSpec {
        threads: vec![
            mk(c1, "checker-1"),
            mk(c2, "checker-2"),
            ThreadSpec::new("updater", move || {
                u.update(new_tary, |_| Some(2));
            }),
        ],
        invariant: Some(invariant_for(&t)),
        finale: Some(Box::new(move || {
            match finale_t.check(0, 8) {
                Ok(_) => {}
                Err(v) => return Err(format!("post-quiescence legal edge rejected: {v:?}")),
            }
            if finale_t.check(0, 16).is_ok() {
                return Err("post-quiescence forbidden edge admitted".to_string());
            }
            Ok(())
        })),
    }
}

#[test]
fn dfs_bound_2_verifies_linearizability_and_liveness() {
    let report = explore(
        ExploreConfig { preemption_bound: 2, max_steps: 5_000, max_schedules: 200_000 },
        || two_checkers_one_updater(true, CODE_SIZE),
    );
    assert!(
        report.counterexample.is_none(),
        "protocol counterexample:\n{}",
        report.counterexample.unwrap()
    );
    assert!(report.exhausted, "bounded space not exhausted within the schedule cap");
    assert_eq!(report.ok_executions, report.schedules);
    assert!(report.schedules > 100, "suspiciously small schedule space: {}", report.schedules);
}

/// The ISSUE acceptance bar: the 2-checker/1-updater scenario yields at
/// least 10,000 distinct schedules under preemption bound 2 (the DFS
/// enumerates schedules without repetition, so `schedules` counts
/// distinct interleavings), all passing, in well under the CI budget.
#[test]
fn dfs_bound_2_covers_ten_thousand_distinct_schedules() {
    let report = explore(
        ExploreConfig { preemption_bound: 2, max_steps: 5_000, max_schedules: 12_000 },
        // A 512-byte code region gives the updater's Tary phase 128
        // entries — enough schedule points that the bound-2 space
        // clears the 10,000-distinct-schedule acceptance bar.
        || two_checkers_one_updater(false, 512),
    );
    assert!(
        report.counterexample.is_none(),
        "protocol counterexample:\n{}",
        report.counterexample.unwrap()
    );
    assert!(
        report.schedules >= 10_000,
        "only {} schedules under bound 2 (exhausted={})",
        report.schedules,
        report.exhausted
    );
}

#[test]
fn random_walk_finds_no_violation_and_covers_distinct_schedules() {
    let report = explore_random(
        ExploreConfig { preemption_bound: 8, max_steps: 5_000, ..Default::default() },
        0x00C0_FFEE,
        300,
        || two_checkers_one_updater(false, CODE_SIZE),
    );
    assert!(
        report.counterexample.is_none(),
        "random-walk counterexample:\n{}",
        report.counterexample.unwrap()
    );
    assert!(
        report.distinct_schedules > 100,
        "random walk collapsed to {} distinct schedules",
        report.distinct_schedules
    );
}

/// Crash the updater at **every** one of its schedule points in turn
/// (full DFS per site): the phase invariant must hold through the kill,
/// surviving checkers must still never admit the forbidden edge, and a
/// post-crash `repair_abandoned` must restore full consistency.
#[test]
fn crash_sweep_holds_phase_invariant_at_every_kill_site() {
    let make = || {
        let t = fresh_tables();
        let (c1, u) = (Arc::clone(&t), Arc::clone(&t));
        let finale_t = Arc::clone(&t);
        ExecSpec {
            threads: vec![
                ThreadSpec::new("checker-1", checker_body(c1)),
                // A version re-stamp: the one transaction the repair
                // path guarantees it can complete after a crash (a
                // crashed CFG *change* loses the not-yet-applied part
                // of the new CFG and is not mechanically repairable).
                ThreadSpec::new("updater", move || {
                    u.bump_version();
                }),
            ],
            invariant: Some(invariant_for(&t)),
            finale: Some(Box::new(move || {
                // The updater may have died mid-transaction; repair must
                // always restore a fully consistent table.
                finale_t.repair_abandoned();
                let current = finale_t.current_version();
                for addr in (0..CODE_SIZE as u64).step_by(4) {
                    if let Some(id) = Id::from_word(finale_t.tary_word(addr)) {
                        if id.version() != current {
                            return Err(format!(
                                "post-repair Tary address {addr} stuck at version {}",
                                id.version().raw()
                            ));
                        }
                    }
                }
                match finale_t.check(0, 8) {
                    Ok(_) => {}
                    Err(v) => return Err(format!("post-repair legal edge rejected: {v:?}")),
                }
                if finale_t.check(0, 16).is_ok() {
                    return Err("post-repair forbidden edge admitted".to_string());
                }
                Ok(())
            })),
        }
    };
    let sweep = crash_sweep(
        ExploreConfig { preemption_bound: 1, max_steps: 5_000, max_schedules: 50_000 },
        "updater",
        make,
    );
    assert!(
        sweep.counterexample.is_none(),
        "crash-site counterexample:\n{}",
        sweep.counterexample.unwrap()
    );
    // The updater passes dozens of schedule points (lock, version, 8
    // Tary words, fence, Bary) — the sweep must actually have walked
    // them rather than stopping at the door.
    assert!(sweep.sites > 10, "sweep covered only {} crash sites", sweep.sites);
    assert!(sweep.schedules > sweep.sites, "sweep must run many schedules per site");
}

/// Seeded bug #1: an updater that runs the Bary phase *before* the Tary
/// phase. The per-schedule-point phase invariant must catch it, and the
/// counterexample trace must replay to the same failure.
#[test]
fn seeded_bary_first_bug_is_caught_with_replayable_trace() {
    let make = || {
        let t = fresh_tables();
        let u = Arc::clone(&t);
        ExecSpec {
            threads: vec![
                ThreadSpec::new("checker-1", checker_body(Arc::clone(&t))),
                ThreadSpec::new("updater", move || {
                    u.bump_version_bary_first_for_tests();
                }),
            ],
            invariant: Some(invariant_for(&t)),
            finale: None,
        }
    };
    let config = ExploreConfig { preemption_bound: 2, max_steps: 5_000, max_schedules: 50_000 };
    let report = explore(config, make);
    let cx = report.counterexample.expect("the bary-first bug must be caught");
    match &cx.outcome {
        ExecOutcome::Fail(msg) => {
            assert!(msg.contains("phase order violated"), "unexpected diagnosis: {msg}")
        }
        other => panic!("expected an invariant failure, got {other:?}"),
    }

    // The trace survives its wire round trip and replays to the exact
    // same failing outcome.
    let wire = cx.trace.wire();
    let parsed = ScheduleTrace::parse(&wire).expect("trace wire format round-trips");
    assert_eq!(parsed, cx.trace);
    let replayed = replay(config, &parsed, make);
    assert_eq!(replayed.outcome, cx.outcome, "replay must reproduce the counterexample");
}

/// Seeded bug #2: a CFG update that skips the version bump. No torn
/// state, no phase violation — but a checker racing the two phases can
/// observe the old branch ID against a new target ID with *matching*
/// words and admit an edge forbidden by both CFGs. Only the
/// linearizability oracle (the checker body itself) catches this one.
#[test]
fn seeded_unversioned_update_bug_is_caught_by_linearizability_oracle() {
    let make = || {
        let t = fresh_tables();
        let u = Arc::clone(&t);
        ExecSpec {
            threads: vec![
                ThreadSpec::new("checker-1", checker_body(Arc::clone(&t))),
                ThreadSpec::new("updater", move || {
                    u.update_unversioned_for_tests(new_tary, |_| Some(2));
                }),
            ],
            invariant: Some(invariant_for(&t)),
            finale: None,
        }
    };
    let config = ExploreConfig { preemption_bound: 2, max_steps: 5_000, max_schedules: 50_000 };
    let report = explore(config, make);
    let cx = report.counterexample.expect("the unversioned-update bug must be caught");
    match &cx.outcome {
        ExecOutcome::Fail(msg) => {
            assert!(msg.contains("forbidden edge 0→16 admitted"), "unexpected diagnosis: {msg}")
        }
        other => panic!("expected a checker-oracle failure, got {other:?}"),
    }
    let replayed = replay(config, &cx.trace, make);
    assert_eq!(replayed.outcome, cx.outcome, "replay must reproduce the counterexample");
}

/// The deadlock oracle: two shadow mutexes acquired in opposite orders
/// must be reported as a deadlock counterexample, not a hang.
#[test]
fn deadlock_is_detected_and_reported() {
    let make = || {
        let a: Arc<McMutex<u32>> = Arc::new(McMutex::new(0));
        let b: Arc<McMutex<u32>> = Arc::new(McMutex::new(0));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        ExecSpec {
            threads: vec![
                ThreadSpec::new("forward", move || {
                    let _g1 = a1.lock();
                    let _g2 = b1.lock();
                }),
                ThreadSpec::new("backward", move || {
                    let _g2 = b2.lock();
                    let _g1 = a2.lock();
                }),
            ],
            invariant: None,
            finale: None,
        }
    };
    let report = explore(
        ExploreConfig { preemption_bound: 2, max_steps: 1_000, max_schedules: 10_000 },
        make,
    );
    let cx = report.counterexample.expect("opposite-order locking must deadlock somewhere");
    assert_eq!(cx.outcome, ExecOutcome::Deadlock);
}

/// The livelock oracle: a thread that spins forever on state nobody
/// will ever change must be reported as a livelock, not a hang.
#[test]
fn livelock_is_detected_and_reported() {
    let make = || {
        let t = fresh_tables();
        let s = Arc::clone(&t);
        // A split bump parks the tables mid-window (Tary new, Bary old)
        // and *abandons* them: the paper-model unbounded check then
        // retries forever.
        ExecSpec {
            threads: vec![ThreadSpec::new("checker-1", move || {
                drop(s.bump_version_split());
                let _ = s.check(0, 8);
            })],
            invariant: None,
            finale: None,
        }
    };
    let report = explore(
        ExploreConfig { preemption_bound: 2, max_steps: 500, max_schedules: 1_000 },
        make,
    );
    let cx = report.counterexample.expect("an abandoned window must livelock TxCheck");
    assert_eq!(cx.outcome, ExecOutcome::Livelock);
}

/// Same abandoned-window scenario, but with the deployable
/// `check_bounded`: escalation repairs the abandoned transaction and
/// every schedule terminates cleanly — the exact resilience property
/// the bounded variant exists to provide.
#[test]
fn check_bounded_escapes_the_abandoned_window_in_every_schedule() {
    let make = || {
        let t = fresh_tables();
        let (s, c) = (Arc::clone(&t), Arc::clone(&t));
        ExecSpec {
            threads: vec![
                ThreadSpec::new("abandoner", move || {
                    drop(s.bump_version_split());
                }),
                ThreadSpec::new("checker-1", move || {
                    let config = RetryConfig { escalate_after: 2, max_retries: 24 };
                    match c.check_bounded(0, 8, &config) {
                        Ok(_) => {}
                        Err(e) => fail(format!("bounded check failed to recover: {e:?}")),
                    }
                }),
            ],
            invariant: Some(invariant_for(&t)),
            finale: None,
        }
    };
    let report = explore(
        ExploreConfig { preemption_bound: 2, max_steps: 5_000, max_schedules: 50_000 },
        make,
    );
    assert!(
        report.counterexample.is_none(),
        "recovery counterexample:\n{}",
        report.counterexample.unwrap()
    );
    assert!(report.exhausted);
}

/// Deep run for nightly/budgeted CI: preemption bound 3 and a long
/// random walk. Gated behind `MCFI_MC_BUDGET` (any non-empty value) so
/// the default test pass stays fast.
#[test]
fn deep_exploration_under_budget_gate() {
    if std::env::var("MCFI_MC_BUDGET").map_or(true, |v| v.is_empty()) {
        return;
    }
    let report = explore(
        ExploreConfig { preemption_bound: 3, max_steps: 10_000, max_schedules: 400_000 },
        || two_checkers_one_updater(false, CODE_SIZE),
    );
    assert!(
        report.counterexample.is_none(),
        "bound-3 counterexample:\n{}",
        report.counterexample.unwrap()
    );
    let walk = explore_random(
        ExploreConfig { preemption_bound: 16, max_steps: 10_000, ..Default::default() },
        0xDEE9,
        5_000,
        || two_checkers_one_updater(false, CODE_SIZE),
    );
    assert!(
        walk.counterexample.is_none(),
        "deep random-walk counterexample:\n{}",
        walk.counterexample.unwrap()
    );
}

/// The updater-lease watchdog, swept over every kill site: with the
/// stamp-at-acquire discipline, *any* crash that left the tables skewed
/// also left an expired lease behind, so one post-quiescence
/// `watchdog_poll` heals the tables completely — no guest check ever
/// had to trip over the window first.
#[test]
fn crash_sweep_watchdog_heals_every_kill_site() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use mcfi_tables::{LeaseConfig, WatchdogVerdict};

    let heals = Arc::new(AtomicU64::new(0));
    let make = {
        let heals = Arc::clone(&heals);
        move || {
            let t = fresh_tables();
            t.set_lease(LeaseConfig { clock: Arc::new(AtomicU64::new(0)), duration: 10 });
            let (c1, u) = (Arc::clone(&t), Arc::clone(&t));
            let finale_t = Arc::clone(&t);
            let heals = Arc::clone(&heals);
            ExecSpec {
                threads: vec![
                    ThreadSpec::new("checker-1", checker_body(c1)),
                    ThreadSpec::new("updater", move || {
                        u.bump_version();
                    }),
                ],
                invariant: Some(invariant_for(&t)),
                finale: Some(Box::new(move || {
                    // Quiescence: the updater is dead (killed or done).
                    // An expired stamp means it died mid-transaction;
                    // the watchdog must be able to heal unaided.
                    match finale_t.watchdog_poll(u64::MAX) {
                        WatchdogVerdict::Healed { .. } => {
                            heals.fetch_add(1, Ordering::Relaxed);
                        }
                        // No stamp: the kill landed before the stamp
                        // (nothing written yet) or after the commit.
                        WatchdogVerdict::Clean => {}
                        other => {
                            return Err(format!("watchdog verdict {other:?} after quiescence"))
                        }
                    }
                    let current = finale_t.current_version();
                    for addr in (0..CODE_SIZE as u64).step_by(4) {
                        if let Some(id) = Id::from_word(finale_t.tary_word(addr)) {
                            if id.version() != current {
                                return Err(format!(
                                    "post-watchdog Tary address {addr} stuck at version {}",
                                    id.version().raw()
                                ));
                            }
                        }
                    }
                    match finale_t.check(0, 8) {
                        Ok(_) => {}
                        Err(v) => return Err(format!("post-watchdog legal edge rejected: {v:?}")),
                    }
                    if finale_t.check(0, 16).is_ok() {
                        return Err("post-watchdog forbidden edge admitted".to_string());
                    }
                    Ok(())
                })),
            }
        }
    };
    let sweep = crash_sweep(
        ExploreConfig { preemption_bound: 1, max_steps: 5_000, max_schedules: 50_000 },
        "updater",
        make,
    );
    assert!(
        sweep.counterexample.is_none(),
        "watchdog counterexample:\n{}",
        sweep.counterexample.unwrap()
    );
    assert!(sweep.sites > 10, "sweep covered only {} crash sites", sweep.sites);
    assert!(
        heals.load(Ordering::Relaxed) > 0,
        "no kill site ever left an expired lease for the watchdog to heal"
    );
}

/// Seeded bug #3: an updater that stamps its lease *after* the Tary
/// phase instead of at lock acquire. A crash anywhere in the Tary phase
/// then leaves skewed tables with no stamp — the watchdog reads
/// `Clean` and never heals. The crash-site sweep must find such a site,
/// and the counterexample must replay.
#[test]
fn crash_sweep_catches_the_late_lease_stamp_bug() {
    use std::sync::atomic::AtomicU64;
    use mcfi_tables::LeaseConfig;

    let make = || {
        let t = fresh_tables();
        t.set_lease(LeaseConfig { clock: Arc::new(AtomicU64::new(0)), duration: 10 });
        let u = Arc::clone(&t);
        let finale_t = Arc::clone(&t);
        ExecSpec {
            threads: vec![ThreadSpec::new("updater", move || {
                u.bump_version_late_lease_for_tests();
            })],
            invariant: None,
            finale: Some(Box::new(move || {
                let _ = finale_t.watchdog_poll(u64::MAX);
                let current = finale_t.current_version();
                for addr in (0..CODE_SIZE as u64).step_by(4) {
                    if let Some(id) = Id::from_word(finale_t.tary_word(addr)) {
                        if id.version() != current {
                            return Err(format!(
                                "watchdog-blind skew: Tary address {addr} stuck at version {} \
                                 after the lease poll",
                                id.version().raw()
                            ));
                        }
                    }
                }
                Ok(())
            })),
        }
    };
    let config = ExploreConfig { preemption_bound: 1, max_steps: 5_000, max_schedules: 50_000 };
    let sweep = crash_sweep(config, "updater", make);
    let cx = sweep.counterexample.expect("the late-stamp bug must be caught");
    match &cx.outcome {
        ExecOutcome::Fail(msg) => {
            assert!(msg.contains("watchdog-blind skew"), "unexpected diagnosis: {msg}")
        }
        other => panic!("expected a finale failure, got {other:?}"),
    }
    let replayed = replay(config, &cx.trace, make);
    assert_eq!(replayed.outcome, cx.outcome, "replay must reproduce the counterexample");
}
