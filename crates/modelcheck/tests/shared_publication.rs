//! Model-checking the shared-image publication protocol: bounded-
//! exhaustive DFS over attach / batched-update / detach interleavings,
//! a crash-site sweep of the batched retarget, and the stale-epoch
//! seeded-bug canary (an attach that reads the image version without
//! the update lock) caught with a replayable trace.
//!
//! The oracle is *publication coherence*: after quiescence, every live
//! shard's effective words — what its check transactions actually
//! consume, through the delta layering — carry the image's current
//! version. A shard that missed a batched retarget surfaces here as a
//! stale-version word masking the freshly restamped base.

use std::sync::Arc;

use mcfi_modelcheck::{
    crash_sweep, explore, fail, replay, ExecOutcome, ExecSpec, ExploreConfig, McMutex,
    McSharedTables, McTables, ScheduleTrace, ThreadSpec,
};
use mcfi_tables::sync::MutexOps;
use mcfi_tables::{CheckError, Id, RetryConfig, TablesConfig};

/// Same scenario CFGs as `protocol.rs`: the edge 0→8 is legal under
/// both, 0→16 under neither, so checkers may assert them at any point
/// relative to an in-flight batched update.
const CODE_SIZE: usize = 32;

fn old_tary(addr: u64) -> Option<u32> {
    match addr {
        8 => Some(1),
        16 => Some(2),
        _ => None,
    }
}

fn new_tary(addr: u64) -> Option<u32> {
    match addr {
        8 => Some(2),
        16 => Some(1),
        _ => None,
    }
}

fn fresh_image() -> McSharedTables {
    let img = McSharedTables::new(TablesConfig { code_size: CODE_SIZE, bary_slots: 1 });
    // Driver-thread setup: no scheduler registered, every shadow op is
    // a plain pass-through.
    img.base().update(old_tary, |_| Some(1));
    img
}

/// A mid-flight drop box: model-checked threads park their attached
/// shard here (a scheduled store) so the finale can audit it after
/// quiescence.
type ShardSlot = Arc<McMutex<Option<Arc<McTables>>>>;

/// The publication-coherence oracle (finale-only — mid-transaction the
/// image is legitimately skewed): every effective word the shard
/// publishes must carry the image's current version.
fn coherent(label: &str, shard: &McTables) -> Result<(), String> {
    let current = shard.current_version();
    for addr in (0..(shard.tary_len() * 4) as u64).step_by(4) {
        if let Some(id) = Id::from_word(shard.tary_word(addr)) {
            if id.version() != current {
                return Err(format!(
                    "stale-epoch skew: {label} Tary address {addr} carries version {} while \
                     the image is at {} — the batched retarget missed this shard",
                    id.version().raw(),
                    current.raw(),
                ));
            }
        }
    }
    for slot in 0..shard.bary_len() {
        if let Some(id) = Id::from_word(shard.bary_word(slot)) {
            if id.version() != current {
                return Err(format!(
                    "stale-epoch skew: {label} Bary slot {slot} carries version {} while \
                     the image is at {} — the batched retarget missed this shard",
                    id.version().raw(),
                    current.raw(),
                ));
            }
        }
    }
    Ok(())
}

/// The Fig. 3 phase invariant on the image base, checkable at every
/// schedule point: base Bary words only advance to the current version
/// after the whole base Tary table has.
fn base_phase_invariant(img: &McSharedTables) -> mcfi_modelcheck::InvariantFn {
    let base = Arc::clone(img.base());
    Box::new(move || {
        let current = base.current_version();
        let bary_advanced = (0..base.bary_len())
            .any(|s| Id::from_word(base.bary_word(s)).is_some_and(|id| id.version() == current));
        if !bary_advanced {
            return Ok(());
        }
        for addr in (0..(base.tary_len() * 4) as u64).step_by(4) {
            if let Some(id) = Id::from_word(base.tary_word(addr)) {
                if id.version() != current {
                    return Err(format!(
                        "phase order violated on the image base: a Bary slot already carries \
                         version {} while Tary address {addr} still carries {}",
                        current.raw(),
                        id.version().raw(),
                    ));
                }
            }
        }
        Ok(())
    })
}

/// The linearizability oracle through one shard, bounded so the thread
/// terminates even if the updater has been crash-killed.
fn bounded_checks(label: &'static str, shard: &Arc<McTables>) {
    let config = RetryConfig { escalate_after: 2, max_retries: 24 };
    match shard.check_bounded(0, 8, &config) {
        Ok(_) | Err(CheckError::Stalled(_)) => {}
        Err(CheckError::Violation(v)) => {
            fail(format!("legal edge 0→8 rejected through {label}: {v:?}"));
        }
    }
    if let Ok(ecn) = shard.check_bounded(0, 16, &config) {
        fail(format!("forbidden edge 0→16 admitted through {label} with ECN {}", ecn.raw()));
    }
}

/// The publication protocol proper: a process attaching (and checking
/// through its fresh delta), a batched base update sweeping the image,
/// and a resident process detaching — every interleaving under
/// preemption bound 2 must leave all surviving shards coherent, the
/// detached shard pruned, and exactly one committed publication epoch.
#[test]
fn attach_update_detach_interleavings_keep_every_shard_coherent() {
    let make = || {
        let img = fresh_image();
        let resident = img.attach();
        let epoch0 = img.epoch();
        let attached: ShardSlot = Arc::new(McMutex::new(None));
        let (a_img, a_out) = (img.clone(), Arc::clone(&attached));
        let u_img = img.clone();
        let (finale_img, finale_slot) = (img.clone(), Arc::clone(&attached));
        ExecSpec {
            threads: vec![
                ThreadSpec::new("attacher", move || {
                    let shard = a_img.attach();
                    bounded_checks("a fresh delta", &shard);
                    *a_out.lock() = Some(shard);
                }),
                ThreadSpec::new("updater", move || {
                    u_img.base().update(new_tary, |_| Some(2));
                }),
                ThreadSpec::new("detacher", move || {
                    bounded_checks("the resident delta", &resident);
                    drop(resident); // detach: the next sweep must not miss a beat
                }),
            ],
            invariant: Some(base_phase_invariant(&img)),
            finale: Some(Box::new(move || {
                coherent("the image base", finale_img.base())?;
                let shard =
                    finale_slot.lock().take().expect("the attacher ran to completion");
                coherent("the attached delta", &shard)?;
                if finale_img.attached() != 1 {
                    return Err(format!(
                        "the detached shard was not pruned: {} live deltas",
                        finale_img.attached()
                    ));
                }
                if finale_img.epoch() != epoch0 + 1 {
                    return Err(format!(
                        "expected exactly one committed publication: epoch moved {} → {}",
                        epoch0,
                        finale_img.epoch()
                    ));
                }
                // The retarget reached every survivor.
                for (label, t) in [("base", finale_img.base()), ("attached delta", &shard)] {
                    if let Err(v) = t.check(0, 8) {
                        return Err(format!(
                            "post-quiescence legal edge rejected through the {label}: {v:?}"
                        ));
                    }
                    if t.check(0, 16).is_ok() {
                        return Err(format!(
                            "post-quiescence forbidden edge admitted through the {label}"
                        ));
                    }
                }
                Ok(())
            })),
        }
    };
    let report = explore(
        ExploreConfig { preemption_bound: 2, max_steps: 5_000, max_schedules: 200_000 },
        make,
    );
    assert!(
        report.counterexample.is_none(),
        "publication counterexample:\n{}",
        report.counterexample.unwrap()
    );
    assert!(report.exhausted, "bounded space not exhausted within the schedule cap");
    assert!(report.schedules > 100, "suspiciously small schedule space: {}", report.schedules);
}

/// The batched retarget killed at **every** one of its schedule points
/// in turn: the base phase invariant must hold through the kill, and a
/// post-crash repair must restore image-wide coherence — including a
/// delta override (ECN 7 at address 8) that the sweep was mid-restamp
/// on.
#[test]
fn crash_sweep_of_the_batched_retarget_leaves_a_repairable_image() {
    let make = || {
        let img = fresh_image();
        let resident = img.attach();
        // Driver-thread setup: the resident process masks address 8 with
        // its own class and revokes 16 — nonzero delta words for the
        // crashed sweep to strand.
        resident.update(|addr| (addr == 8).then_some(7), |_| Some(7));
        let checker = Arc::clone(&resident);
        let u_base = Arc::clone(img.base());
        let (finale_img, finale_res) = (img.clone(), resident);
        ExecSpec {
            threads: vec![
                ThreadSpec::new("checker", move || {
                    bounded_checks("the resident delta", &checker);
                }),
                ThreadSpec::new("updater", move || {
                    u_base.bump_version();
                }),
            ],
            invariant: Some(base_phase_invariant(&img)),
            finale: Some(Box::new(move || {
                finale_img.base().repair_abandoned();
                coherent("the image base", finale_img.base())?;
                coherent("the resident delta", &finale_res)?;
                if let Err(v) = finale_img.base().check(0, 8) {
                    return Err(format!("post-repair legal edge rejected on the base: {v:?}"));
                }
                match finale_res.check(0, 8) {
                    Ok(ecn) if ecn.raw() == 7 => {}
                    other => {
                        return Err(format!(
                            "post-repair delta override lost: check(0, 8) = {other:?}"
                        ))
                    }
                }
                if finale_res.check(0, 16).is_ok() {
                    return Err("post-repair revoked target admitted through the delta".into());
                }
                Ok(())
            })),
        }
    };
    let sweep = crash_sweep(
        ExploreConfig { preemption_bound: 1, max_steps: 5_000, max_schedules: 50_000 },
        "updater",
        make,
    );
    assert!(
        sweep.counterexample.is_none(),
        "batched-retarget crash counterexample:\n{}",
        sweep.counterexample.unwrap()
    );
    assert!(sweep.sites > 10, "sweep covered only {} crash sites", sweep.sites);
    assert!(sweep.schedules > sweep.sites, "sweep must run many schedules per site");
}

/// The seeded-bug canary: an attach that reads the image version
/// *without* the update lock, prestamps its delta from the base at that
/// version, and registers late. The DFS must find the interleaving
/// where a batched update commits inside that window — the late
/// registration then publishes stale-version words masking the
/// restamped base — and the counterexample trace must replay.
#[test]
fn the_stale_epoch_attach_canary_is_caught_with_a_replayable_trace() {
    let make = || {
        let img = fresh_image();
        let attached: ShardSlot = Arc::new(McMutex::new(None));
        let (a_img, a_out) = (img.clone(), Arc::clone(&attached));
        let u_img = img.clone();
        let (finale_img, finale_slot) = (img.clone(), Arc::clone(&attached));
        ExecSpec {
            threads: vec![
                ThreadSpec::new("attacher", move || {
                    *a_out.lock() = Some(a_img.attach_prestamped_stale_for_tests());
                }),
                ThreadSpec::new("updater", move || {
                    u_img.base().update(new_tary, |_| Some(2));
                }),
            ],
            invariant: Some(base_phase_invariant(&img)),
            finale: Some(Box::new(move || {
                coherent("the image base", finale_img.base())?;
                let shard =
                    finale_slot.lock().take().expect("the attacher ran to completion");
                coherent("the prestamped delta", &shard)
            })),
        }
    };
    let config = ExploreConfig { preemption_bound: 2, max_steps: 5_000, max_schedules: 50_000 };
    let report = explore(config, make);
    let cx = report.counterexample.expect("the stale-epoch attach bug must be caught");
    match &cx.outcome {
        ExecOutcome::Fail(msg) => {
            assert!(msg.contains("stale-epoch skew"), "unexpected diagnosis: {msg}")
        }
        other => panic!("expected a finale failure, got {other:?}"),
    }

    // The trace survives its wire round trip and replays to the exact
    // same failing outcome.
    let wire = cx.trace.wire();
    let parsed = ScheduleTrace::parse(&wire).expect("trace wire format round-trips");
    assert_eq!(parsed, cx.trace);
    let replayed = replay(config, &parsed, make);
    assert_eq!(replayed.outcome, cx.outcome, "replay must reproduce the counterexample");
}
