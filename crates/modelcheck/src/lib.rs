//! `mcfi-modelcheck` — a deterministic-interleaving model checker for
//! the MCFI ID-table transactions.
//!
//! The paper's Fig. 3 protocol (`TxCheck`/`TxUpdate`) is lock-free on
//! the read side and its correctness hinges on a precise order of
//! atomic effects: version bump, Tary stamping, an SeqCst fence, Bary
//! stamping. Stress tests sample interleavings; this crate *enumerates*
//! them. The table code is instantiated over the shadow facade
//! [`McSync`], whose every atomic access, lock operation, and fence
//! reports to a controlled scheduler before taking effect, and the
//! scheduler explores:
//!
//! - **bounded-exhaustive DFS** ([`explore`]) — every interleaving
//!   reachable with at most N preemptions (N = 2 covers most known
//!   concurrency-bug patterns);
//! - **seeded random walks** ([`explore_random`]) — deep schedules the
//!   preemption bound excludes;
//! - **crash-site sweeps** ([`crash_sweep`]) — the updater killed at
//!   *each* of its schedule points in turn, checking the crash-safety
//!   invariant (Tary stamped before Bary) at instruction-boundary
//!   granularity.
//!
//! Three oracles hang off [`ExecSpec`]: a per-schedule-point state
//! invariant, per-thread assertions inside the thread bodies (use
//! [`fail`]), and a post-execution finale. A failing schedule is
//! returned as a [`Counterexample`] whose [`ScheduleTrace`] replays the
//! exact interleaving from a one-line wire string ([`replay`]).
//!
//! ```
//! use mcfi_modelcheck::{explore, ExecSpec, ExploreConfig, McTables, ThreadSpec};
//! use mcfi_tables::TablesConfig;
//! use std::sync::Arc;
//!
//! let report = explore(ExploreConfig { max_steps: 500, ..Default::default() }, || {
//!     let t = Arc::new(McTables::new(TablesConfig { code_size: 16, bary_slots: 1 }));
//!     t.update(|addr| (addr == 8).then_some(1), |_| Some(1));
//!     let (a, b) = (Arc::clone(&t), Arc::clone(&t));
//!     ExecSpec {
//!         threads: vec![
//!             ThreadSpec::new("checker", move || {
//!                 let _ = a.check(0, 8);
//!             }),
//!             ThreadSpec::new("updater", move || {
//!                 b.bump_version();
//!             }),
//!         ],
//!         invariant: None,
//!         finale: None,
//!     }
//! });
//! assert!(report.counterexample.is_none());
//! assert!(report.exhausted);
//! ```
//!
//! Production code is untouched by all of this: `IdTables` remains the
//! `StdSync` instantiation, monomorphized to the exact pre-facade fast
//! path.

#![forbid(unsafe_code)]

mod explore;
mod sched;
mod shadow;
mod trace;

pub use explore::{
    crash_sweep, explore, explore_random, replay, Counterexample, ExploreConfig, ExploreReport,
    RandomReport, SweepReport,
};
pub use sched::{fail, Decision, ExecOutcome, ExecResult, ExecSpec, InvariantFn, ThreadSpec};
pub use shadow::{McAtomicBool, McAtomicU32, McAtomicU64, McMutex, McSync};
pub use trace::{ScheduleTrace, TraceParseError};

/// The model-checked ID tables: same code as the production
/// [`mcfi_tables::IdTables`], instantiated over the shadow facade so
/// every table access is a schedule point.
pub type McTables = mcfi_tables::IdTablesAt<McSync>;

/// The model-checked wide (64-bit-word) tables.
pub type McWideTables = mcfi_tables::wide::WideIdTablesAt<McSync>;

/// The model-checked shared-image tables: the base-plus-delta
/// publication protocol (see [`mcfi_tables::SharedTablesAt`]) with every
/// attach, sweep, and registration step a schedule point.
pub type McSharedTables = mcfi_tables::SharedTablesAt<McSync>;

/// The model-checked MCFI strategy (tables + Fig. 3 transactions behind
/// the `CheckStrategy` trait).
pub type McStrategy = mcfi_tables::stm::McfiStrategyAt<McSync>;
