//! The shadow synchronization family: [`McSync`].
//!
//! Every operation on a shadow primitive reaches a schedule point
//! *before* it takes effect, so the scheduler can interleave any other
//! thread between two accesses — exactly the granularity at which the
//! table protocol can go wrong. The primitives themselves delegate to
//! the real `std` atomics at `SeqCst`: since only one model thread runs
//! at a time, the memory model degenerates to sequential consistency
//! and the interesting nondeterminism lives entirely in the
//! interleaving choices, which the scheduler enumerates. (Weak-memory
//! reorderings are out of scope — the protocol's orderings are already
//! release/acquire-correct by construction, and the bugs this checker
//! hunts are interleaving and crash-atomicity bugs.)
//!
//! Outside an execution (no scheduler registered on the current thread)
//! every operation is a plain pass-through, so the driver thread can
//! build tables and oracles can inspect them freely.

use core::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use mcfi_tables::sync::{AtomicBoolOps, AtomicU32Ops, AtomicU64Ops, MutexOps, SyncFacade};

use crate::sched::{block_current_on, schedule_point, wake_blocked_on, yield_hint};

/// The model-checked facade. `IdTablesAt<McSync>` is a table whose
/// every protocol-relevant access is a schedule point.
#[derive(Debug, Default, Clone, Copy)]
pub struct McSync;

/// Shadow 32-bit atomic: schedule point, then the `SeqCst` operation.
#[derive(Debug)]
pub struct McAtomicU32(AtomicU32);

impl AtomicU32Ops for McAtomicU32 {
    fn new(value: u32) -> Self {
        McAtomicU32(AtomicU32::new(value))
    }
    fn load(&self, _order: Ordering) -> u32 {
        schedule_point();
        self.0.load(Ordering::SeqCst)
    }
    fn store(&self, value: u32, _order: Ordering) {
        schedule_point();
        self.0.store(value, Ordering::SeqCst);
    }
    fn fetch_add(&self, value: u32, _order: Ordering) -> u32 {
        schedule_point();
        self.0.fetch_add(value, Ordering::SeqCst)
    }
    fn fetch_sub(&self, value: u32, _order: Ordering) -> u32 {
        schedule_point();
        self.0.fetch_sub(value, Ordering::SeqCst)
    }
    fn fetch_or(&self, value: u32, _order: Ordering) -> u32 {
        schedule_point();
        self.0.fetch_or(value, Ordering::SeqCst)
    }
    fn fetch_and(&self, value: u32, _order: Ordering) -> u32 {
        schedule_point();
        self.0.fetch_and(value, Ordering::SeqCst)
    }
    fn compare_exchange_weak(
        &self,
        current: u32,
        new: u32,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<u32, u32> {
        schedule_point();
        // The strong variant underneath: spurious failure is extra
        // nondeterminism the schedule search does not need (a spurious
        // retry re-reads and re-CASes, which the search already covers
        // via interleaving the loop's iterations).
        self.0.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

/// Shadow 64-bit atomic.
#[derive(Debug)]
pub struct McAtomicU64(AtomicU64);

impl AtomicU64Ops for McAtomicU64 {
    fn new(value: u64) -> Self {
        McAtomicU64(AtomicU64::new(value))
    }
    fn load(&self, _order: Ordering) -> u64 {
        schedule_point();
        self.0.load(Ordering::SeqCst)
    }
    fn store(&self, value: u64, _order: Ordering) {
        schedule_point();
        self.0.store(value, Ordering::SeqCst);
    }
    fn fetch_add(&self, value: u64, _order: Ordering) -> u64 {
        schedule_point();
        self.0.fetch_add(value, Ordering::SeqCst)
    }
}

/// Shadow atomic flag.
#[derive(Debug)]
pub struct McAtomicBool(AtomicBool);

impl AtomicBoolOps for McAtomicBool {
    fn new(value: bool) -> Self {
        McAtomicBool(AtomicBool::new(value))
    }
    fn load(&self, _order: Ordering) -> bool {
        schedule_point();
        self.0.load(Ordering::SeqCst)
    }
    fn store(&self, value: bool, _order: Ordering) {
        schedule_point();
        self.0.store(value, Ordering::SeqCst);
    }
}

static NEXT_MUTEX_ID: AtomicU64 = AtomicU64::new(1);

/// Shadow mutex. Acquisition is a schedule point plus a CAS on an
/// ownership flag; contention parks the thread in the *scheduler*
/// (state `Blocked(id)`), never in the OS, so the scheduler always
/// knows exactly which threads can run and can detect deadlock.
pub struct McMutex<T> {
    id: u64,
    held: AtomicBool,
    data: parking_lot::Mutex<T>,
}

impl<T: fmt::Debug> fmt::Debug for McMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("McMutex").field("id", &self.id).field("held", &self.held).finish()
    }
}

/// RAII guard for [`McMutex`]. Dropping it releases the lock and wakes
/// blocked threads *quietly* (no schedule point), so unlock during a
/// kill unwind can never panic again.
pub struct McMutexGuard<'a, T> {
    mutex: &'a McMutex<T>,
    inner: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T> Deref for McMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock until drop")
    }
}

impl<T> DerefMut for McMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock until drop")
    }
}

impl<T> Drop for McMutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        self.mutex.held.store(false, Ordering::SeqCst);
        wake_blocked_on(self.mutex.id);
    }
}

impl<T: Send + fmt::Debug> MutexOps<T> for McMutex<T> {
    type Guard<'a>
        = McMutexGuard<'a, T>
    where
        Self: 'a,
        T: 'a;

    fn new(value: T) -> Self {
        McMutex {
            id: NEXT_MUTEX_ID.fetch_add(1, Ordering::Relaxed),
            held: AtomicBool::new(false),
            data: parking_lot::Mutex::new(value),
        }
    }

    fn lock(&self) -> Self::Guard<'_> {
        schedule_point();
        loop {
            if self
                .held
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
            block_current_on(self.id);
            // Woken: the holder released. Retry — if several waiters
            // were woken, whichever the scheduler runs first wins and
            // the rest re-block, so arbitration is itself scheduled.
        }
        // Only one model thread runs at a time and the `held` flag
        // serializes ownership, so the inner lock is uncontended.
        McMutexGuard { mutex: self, inner: Some(self.data.lock()) }
    }

    fn try_lock(&self) -> Option<Self::Guard<'_>> {
        schedule_point();
        if self.held.compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
            Some(McMutexGuard { mutex: self, inner: Some(self.data.lock()) })
        } else {
            None
        }
    }
}

impl SyncFacade for McSync {
    type AtomicU32 = McAtomicU32;
    type AtomicU64 = McAtomicU64;
    type AtomicBool = McAtomicBool;
    type Mutex<T: Send + fmt::Debug> = McMutex<T>;

    /// The Fig. 3 barrier is a schedule point too: crash-site sweeps
    /// must be able to kill an updater *between* the fence and the
    /// stores on either side of it.
    fn fence(_order: Ordering) {
        schedule_point();
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Spin-retry iterations are *fair-yield* points: the spinner hands
    /// the core to another runnable thread free of preemption charge.
    /// Without this, a checker spinning on a version mismatch would
    /// monopolize the schedule once the preemption budget is spent and
    /// every mid-update interleaving would be misreported as a
    /// livelock. (This mirrors how CHESS treats `sched_yield`.)
    fn spin_hint() {
        yield_hint();
    }
}
