//! The controlled-schedule executor (`Sched`).
//!
//! One *execution* runs each model thread on a real OS thread, but only
//! one thread is ever allowed to make progress: before every shadow
//! synchronization operation the thread reaches a **schedule point**,
//! where the scheduler decides which runnable thread proceeds next. The
//! decision sequence fully determines the interleaving, so an execution
//! is replayable from its decision list alone, and a DFS over decision
//! alternatives enumerates interleavings exhaustively.
//!
//! Schedule points come **before** the operation they precede, so every
//! state the protocol passes through is observed by the invariant oracle
//! and every memory effect can be separated from its neighbours by a
//! context switch. Preemption bounding (Musuvathi & Qadeer, PLDI 2007)
//! keeps the search tractable: switching away from a *runnable* thread
//! costs one preemption from a small budget, while forced switches
//! (the current thread blocked or finished) are free. Once the budget
//! is spent the current thread runs on without branching, which is the
//! standard sound way to bound the search.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

use mcfi_chaos::{ChaosInjector, FaultPlan, FaultPoint};

/// Sentinel panic payload: the crash-site sweep killed this thread.
pub(crate) struct McKill;

/// Sentinel panic payload: the execution is being torn down (budget
/// exhausted, deadlock, or a failure elsewhere).
pub(crate) struct McAbort;

/// Sentinel panic payload: an oracle failed with a message. Use
/// [`fail`] from scenario bodies instead of `panic!` so counterexample
/// executions do not spam the default panic hook.
pub(crate) struct McFail(pub String);

/// Aborts the current model execution with an oracle-failure message,
/// which becomes the counterexample's diagnosis.
pub fn fail(msg: String) -> ! {
    panic::panic_any(McFail(msg))
}

/// A scheduling decision at a branch point: which of `options` eligible
/// threads was chosen (`choice` indexes the eligible list, current
/// thread first, then the other runnable threads by ascending id).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decision {
    /// The chosen index into the eligible list.
    pub choice: u8,
    /// How many threads were eligible (always ≥ 2; single-option points
    /// are not recorded — they cannot branch).
    pub options: u8,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    /// Waiting for the shadow mutex with this id.
    Blocked(u64),
    Finished,
}

struct Core {
    states: Vec<TState>,
    current: usize,
    abort: bool,
    failure: Option<String>,
    livelock: bool,
    deadlock: bool,
    steps: u64,
    preemptions: u32,
    decisions: Vec<Decision>,
    /// Decision prefix to follow before falling back to the default
    /// source (DFS: first option; random: the seeded RNG).
    prescribed: Vec<u8>,
    cursor: usize,
    rng: Option<XorShift64>,
}

impl Core {
    /// Picks among `eligible` (len ≥ 1); records a [`Decision`] only
    /// when there is a real branch.
    fn decide(&mut self, eligible: &[usize]) -> usize {
        if eligible.len() <= 1 {
            return 0;
        }
        let options = eligible.len() as u8;
        let choice = if self.cursor < self.prescribed.len() {
            self.prescribed[self.cursor].min(options - 1)
        } else if let Some(rng) = &mut self.rng {
            (rng.next() % u64::from(options)) as u8
        } else {
            0
        };
        self.cursor += 1;
        self.decisions.push(Decision { choice, options });
        usize::from(choice)
    }
}

struct KillState {
    victim: String,
    injector: Arc<ChaosInjector>,
}

/// The invariant oracle: called at every schedule point with the shadow
/// primitives in pass-through mode, so it can read table state freely.
pub type InvariantFn = Box<dyn Fn() -> Result<(), String> + Send + Sync>;

/// The controlled scheduler for one execution.
pub struct Sched {
    core: Mutex<Core>,
    cv: Condvar,
    names: Vec<String>,
    invariant: Option<InvariantFn>,
    kill: Option<KillState>,
    preemption_bound: u32,
    max_steps: u64,
}

struct Ctx {
    sched: Arc<Sched>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static IN_ORACLE: Cell<bool> = const { Cell::new(false) };
}

/// The schedule point every shadow operation passes through. A no-op
/// outside an execution (the driver thread sets up and inspects table
/// state without scheduling) and inside the invariant oracle.
pub(crate) fn schedule_point() {
    let ctx = CTX.with(|c| c.borrow().as_ref().map(|x| (Arc::clone(&x.sched), x.tid)));
    if let Some((sched, tid)) = ctx {
        if IN_ORACLE.with(Cell::get) {
            return;
        }
        sched.point(tid);
    }
}

/// Blocks the current model thread on shadow mutex `mid` until woken.
pub(crate) fn block_current_on(mid: u64) {
    let ctx = CTX.with(|c| c.borrow().as_ref().map(|x| (Arc::clone(&x.sched), x.tid)));
    match ctx {
        Some((sched, tid)) => sched.block_on(tid, mid),
        // The driver thread never contends a shadow mutex: executions
        // release every lock (RAII, even on kill unwinds) before join
        // returns. Reaching here means a scenario bug.
        None => panic!("shadow mutex contended outside a model execution"),
    }
}

/// Wakes every thread blocked on shadow mutex `mid` (they become
/// runnable; they run when next scheduled). Quiet — not a schedule
/// point — so unlock-on-unwind can never double-panic.
pub(crate) fn wake_blocked_on(mid: u64) {
    let ctx = CTX.with(|c| c.borrow().as_ref().map(|x| Arc::clone(&x.sched)));
    if let Some(sched) = ctx {
        sched.wake_blocked(mid);
    }
}

/// A fair-yield point: the current thread declares it cannot make
/// progress until someone else runs (a spin-retry iteration). Handing
/// the core to another runnable thread here is *free* — it costs no
/// preemption — which is what keeps spin loops from monopolizing the
/// schedule once the preemption budget is spent (the CHESS treatment of
/// `sched_yield`). No-op outside an execution.
pub(crate) fn yield_hint() {
    let ctx = CTX.with(|c| c.borrow().as_ref().map(|x| (Arc::clone(&x.sched), x.tid)));
    if let Some((sched, tid)) = ctx {
        if IN_ORACLE.with(Cell::get) {
            return;
        }
        sched.yield_point(tid);
    }
}

impl Sched {
    fn lock_core(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// One schedule point for thread `tid`: crash-site kill check, then
    /// the invariant oracle, then the scheduling decision.
    fn point(&self, tid: usize) {
        if let Some(kill) = &self.kill {
            if self.names[tid] == kill.victim
                && kill.injector.fire(FaultPoint::SchedPoint).is_some()
            {
                // The victim dies *here*, mid-transaction: unwinding
                // drops its lock guards (a crashed updater's lock is
                // released, as when a SplitBump is dropped), leaving
                // the tables wherever the previous stores put them.
                panic::panic_any(McKill);
            }
        }
        if let Some(inv) = &self.invariant {
            let res = IN_ORACLE.with(|f| {
                f.set(true);
                let res = inv();
                f.set(false);
                res
            });
            if let Err(msg) = res {
                panic::panic_any(McFail(msg));
            }
        }
        let mut core = self.lock_core();
        if core.abort {
            drop(core);
            panic::panic_any(McAbort);
        }
        core.steps += 1;
        if core.steps > self.max_steps {
            core.livelock = true;
            self.fail_locked(
                &mut core,
                format!("livelock: no progress within {} schedule points", self.max_steps),
            );
            drop(core);
            panic::panic_any(McAbort);
        }
        let mut eligible = vec![tid];
        if core.preemptions < self.preemption_bound {
            let states = &core.states;
            eligible.extend(
                (0..states.len()).filter(|&t| t != tid && states[t] == TState::Runnable),
            );
        }
        let idx = core.decide(&eligible);
        let chosen = eligible[idx];
        if chosen != tid {
            core.preemptions += 1;
            core.current = chosen;
            self.cv.notify_all();
            self.wait_for_turn(core, tid);
        }
    }

    /// A fair yield from `tid`: hand the core to the *cyclically next*
    /// runnable thread without charging a preemption. Deliberately NOT
    /// a branch point: a spinning thread re-reads unchanged state, so
    /// branching here would let the DFS walk unfair spinner-ping-pong
    /// paths to the step budget and misreport them as livelocks, while
    /// adding no protocol states the real schedule points can't reach.
    /// Round-robin order guarantees every runnable thread gets the core
    /// within `n` yields, so spinners can never starve the one thread
    /// whose progress would release them.
    fn yield_point(&self, tid: usize) {
        let mut core = self.lock_core();
        if core.abort {
            drop(core);
            panic::panic_any(McAbort);
        }
        core.steps += 1;
        if core.steps > self.max_steps {
            core.livelock = true;
            self.fail_locked(
                &mut core,
                format!("livelock: no progress within {} schedule points", self.max_steps),
            );
            drop(core);
            panic::panic_any(McAbort);
        }
        let n = core.states.len();
        let next = (1..n)
            .map(|d| (tid + d) % n)
            .find(|&t| core.states[t] == TState::Runnable);
        if let Some(next) = next {
            core.current = next;
            self.cv.notify_all();
            self.wait_for_turn(core, tid);
        }
    }

    fn wait_for_turn(&self, mut core: MutexGuard<'_, Core>, tid: usize) {
        loop {
            if core.abort {
                drop(core);
                panic::panic_any(McAbort);
            }
            if core.current == tid {
                return;
            }
            core = self.cv.wait(core).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn block_on(&self, tid: usize, mid: u64) {
        let mut core = self.lock_core();
        if core.abort {
            drop(core);
            panic::panic_any(McAbort);
        }
        core.states[tid] = TState::Blocked(mid);
        self.pick_next_locked(&mut core, tid);
        loop {
            if core.abort {
                drop(core);
                panic::panic_any(McAbort);
            }
            if core.current == tid && core.states[tid] == TState::Runnable {
                return;
            }
            core = self.cv.wait(core).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn wake_blocked(&self, mid: u64) {
        let mut core = self.lock_core();
        for st in &mut core.states {
            if *st == TState::Blocked(mid) {
                *st = TState::Runnable;
            }
        }
        // No scheduling change: the woken threads compete at the next
        // schedule point, so unlocking itself never branches the search.
    }

    /// Hands the core to another thread after `tid` can no longer run
    /// (blocked or finished). This switch is forced — free of preemption
    /// charge — but still a branch point when several threads could go.
    fn pick_next_locked(&self, core: &mut MutexGuard<'_, Core>, tid: usize) {
        if core.abort {
            self.cv.notify_all();
            return;
        }
        debug_assert_eq!(core.current, tid, "only the current thread yields the core");
        let runnable: Vec<usize> =
            (0..core.states.len()).filter(|&t| core.states[t] == TState::Runnable).collect();
        if runnable.is_empty() {
            if core.states.iter().any(|s| matches!(s, TState::Blocked(_))) {
                core.deadlock = true;
                self.fail_locked(core, "deadlock: every live thread is blocked".to_string());
            }
            self.cv.notify_all();
            return;
        }
        let idx = core.decide(&runnable);
        core.current = runnable[idx];
        self.cv.notify_all();
    }

    fn fail_locked(&self, core: &mut Core, msg: String) {
        if core.failure.is_none() {
            core.failure = Some(msg);
        }
        core.abort = true;
        self.cv.notify_all();
    }

    fn thread_finished(&self, tid: usize, failure: Option<String>) {
        let mut core = self.lock_core();
        core.states[tid] = TState::Finished;
        if let Some(msg) = failure {
            self.fail_locked(&mut core, msg);
        }
        if core.current == tid {
            self.pick_next_locked(&mut core, tid);
        }
        self.cv.notify_all();
    }
}

/// One model thread: a name (the crash-site sweep targets threads by
/// name) and a body run under the controlled scheduler.
pub struct ThreadSpec {
    /// The thread's name; `"updater"` is the conventional kill target.
    pub name: String,
    /// The thread body. All its table traffic must go through
    /// `IdTablesAt<McSync>` for the scheduler to see it.
    pub body: Box<dyn FnOnce() + Send>,
}

impl ThreadSpec {
    /// Builds a named model thread.
    pub fn new(name: &str, body: impl FnOnce() + Send + 'static) -> Self {
        ThreadSpec { name: name.to_string(), body: Box::new(body) }
    }
}

/// Everything one execution runs: the model threads, an optional
/// invariant checked at every schedule point, and an optional finale
/// oracle run on the driver thread after every thread has finished.
pub struct ExecSpec {
    /// The model threads, spawned in order (thread 0 runs first — the
    /// first schedule point can immediately switch away, so starting
    /// order costs no coverage).
    pub threads: Vec<ThreadSpec>,
    /// State predicate over the shadow tables, checked before every
    /// operation; `Err` aborts the execution as a counterexample.
    pub invariant: Option<InvariantFn>,
    /// Post-execution oracle (runs unscheduled, on the driver).
    pub finale: Option<Box<dyn FnOnce() -> Result<(), String>>>,
}

/// How an execution ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecOutcome {
    /// Every thread finished and every oracle passed.
    Ok,
    /// An oracle failed or a thread panicked; the message diagnoses it.
    Fail(String),
    /// The per-execution step budget ran out — no thread made progress.
    Livelock,
    /// Every live thread was blocked on a shadow mutex.
    Deadlock,
}

/// The record of one execution.
#[derive(Clone, Debug)]
pub struct ExecResult {
    /// How it ended.
    pub outcome: ExecOutcome,
    /// Every branch-point decision taken, in order — the replayable
    /// schedule.
    pub decisions: Vec<Decision>,
    /// Whether the planned crash-site kill fired.
    pub kill_fired: bool,
    /// How many schedule points the kill victim passed (0 when no kill
    /// was planned); the sweep stops when this falls below the planned
    /// site index.
    pub victim_points: u64,
}

/// Schedule-source and budget parameters for one execution.
pub(crate) struct RunParams {
    pub prescribed: Vec<u8>,
    pub rng_seed: Option<u64>,
    pub preemption_bound: u32,
    pub max_steps: u64,
    /// Kill thread `name` at its `nth` schedule point.
    pub kill: Option<(String, u64)>,
}

/// Runs one complete execution of `spec` under `params`.
pub(crate) fn run_one(spec: ExecSpec, params: RunParams) -> ExecResult {
    install_quiet_hook();
    let n = spec.threads.len();
    assert!(n > 0, "an execution needs at least one thread");
    let injector = params.kill.as_ref().map(|(_, nth)| {
        ChaosInjector::arm(FaultPlan::new().with(FaultPoint::SchedPoint, *nth, 0))
    });
    let sched = Arc::new(Sched {
        core: Mutex::new(Core {
            states: vec![TState::Runnable; n],
            current: 0,
            abort: false,
            failure: None,
            livelock: false,
            deadlock: false,
            steps: 0,
            preemptions: 0,
            decisions: Vec::new(),
            prescribed: params.prescribed,
            cursor: 0,
            rng: params.rng_seed.map(XorShift64::new),
        }),
        cv: Condvar::new(),
        names: spec.threads.iter().map(|t| t.name.clone()).collect(),
        invariant: spec.invariant,
        kill: params.kill.as_ref().map(|(victim, _)| KillState {
            victim: victim.clone(),
            injector: Arc::clone(injector.as_ref().expect("armed alongside kill")),
        }),
        preemption_bound: params.preemption_bound,
        max_steps: params.max_steps,
    });

    let handles: Vec<_> = spec
        .threads
        .into_iter()
        .enumerate()
        .map(|(tid, t)| {
            let sched = Arc::clone(&sched);
            std::thread::Builder::new()
                .name(format!("mc-{}", t.name))
                .spawn(move || {
                    CTX.with(|c| {
                        *c.borrow_mut() = Some(Ctx { sched: Arc::clone(&sched), tid });
                    });
                    // Wait for the scheduler to hand this thread the core
                    // (thread 0 holds it from the start).
                    let should_run = {
                        let mut core = sched.lock_core();
                        loop {
                            if core.abort {
                                break false;
                            }
                            if core.current == tid {
                                break true;
                            }
                            core = sched
                                .cv
                                .wait(core)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    };
                    let failure = if should_run {
                        match panic::catch_unwind(AssertUnwindSafe(t.body)) {
                            Ok(()) => None,
                            // `&*` reborrows the boxed payload itself —
                            // `&payload` would coerce the *Box* into the
                            // trait object and every downcast would miss.
                            Err(payload) => classify_payload(&*payload),
                        }
                    } else {
                        None
                    };
                    sched.thread_finished(tid, failure);
                    CTX.with(|c| *c.borrow_mut() = None);
                })
                .expect("spawn model thread")
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }

    let (mut outcome, decisions) = {
        let core = sched.lock_core();
        let outcome = if core.livelock {
            ExecOutcome::Livelock
        } else if core.deadlock {
            ExecOutcome::Deadlock
        } else if let Some(msg) = core.failure.clone() {
            ExecOutcome::Fail(msg)
        } else {
            ExecOutcome::Ok
        };
        (outcome, core.decisions.clone())
    };
    if outcome == ExecOutcome::Ok {
        if let Some(finale) = spec.finale {
            if let Err(msg) = finale() {
                outcome = ExecOutcome::Fail(msg);
            }
        }
    }
    ExecResult {
        outcome,
        decisions,
        kill_fired: injector.as_ref().is_some_and(|i| !i.fired().is_empty()),
        victim_points: injector.map_or(0, |i| i.hit_count(FaultPoint::SchedPoint)),
    }
}

fn classify_payload(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    if payload.downcast_ref::<McKill>().is_some() || payload.downcast_ref::<McAbort>().is_some() {
        return None;
    }
    if let Some(f) = payload.downcast_ref::<McFail>() {
        return Some(f.0.clone());
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return Some((*s).to_string());
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return Some(s.clone());
    }
    Some("model thread panicked with a non-string payload".to_string())
}

/// Installs (once, process-wide) a panic hook that silences the
/// scheduler's sentinel payloads — kill sweeps unwind thousands of
/// threads per test run — and delegates every real panic to the
/// previous hook untouched.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.downcast_ref::<McKill>().is_some()
                || p.downcast_ref::<McAbort>().is_some()
                || p.downcast_ref::<McFail>().is_some()
            {
                return;
            }
            prev(info);
        }));
    });
}

/// The xorshift64 PRNG behind random schedules — tiny, seedable, and
/// identical on every host (the same generator chaos plans use).
pub(crate) struct XorShift64(u64);

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift64(seed | 1)
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}
