//! Schedule exploration: bounded-exhaustive DFS, seeded random walks,
//! crash-site sweeps, and trace replay.
//!
//! The DFS enumerates every schedule reachable under the preemption
//! bound by replaying a decision prefix and letting the scheduler take
//! first options beyond it; after each execution the deepest decision
//! with an untried alternative advances, exactly like iterative path
//! enumeration in a stateless model checker (CHESS-style). Executions
//! are deterministic functions of their decision list, so no state
//! needs saving between runs — each run rebuilds the scenario from
//! scratch via the `make` closure.

use core::fmt;
use std::collections::HashSet;

use crate::sched::{run_one, Decision, ExecOutcome, ExecResult, ExecSpec, RunParams};
use crate::trace::ScheduleTrace;

/// Search budget and bounds for one exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExploreConfig {
    /// How many times the search may switch away from a *runnable*
    /// thread per execution. Empirically 2 catches most interleaving
    /// bugs (Musuvathi & Qadeer); 3 is a deep nightly setting.
    pub preemption_bound: u32,
    /// Per-execution schedule-point budget; exceeding it is reported as
    /// a livelock.
    pub max_steps: u64,
    /// Cap on executions per exploration call; the report notes whether
    /// the search exhausted the space or hit this cap.
    pub max_schedules: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { preemption_bound: 2, max_steps: 20_000, max_schedules: 1_000_000 }
    }
}

/// A failing execution, packaged for reproduction: the replayable trace
/// plus what went wrong.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counterexample {
    /// Replay this with [`replay`] to reproduce the failure exactly.
    pub trace: ScheduleTrace,
    /// The failing outcome (never [`ExecOutcome::Ok`]).
    pub outcome: ExecOutcome,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.outcome {
            ExecOutcome::Ok => "ok (not a counterexample)",
            ExecOutcome::Fail(msg) => msg.as_str(),
            ExecOutcome::Livelock => "livelock",
            ExecOutcome::Deadlock => "deadlock",
        };
        write!(f, "{what}\n  replay trace: {}", self.trace.wire())
    }
}

/// What a bounded-exhaustive exploration found.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExploreReport {
    /// Executions run.
    pub schedules: u64,
    /// Executions that passed every oracle.
    pub ok_executions: u64,
    /// The first failing execution, if any (the search stops on it).
    pub counterexample: Option<Counterexample>,
    /// Whether the bounded space was fully enumerated (`false` when the
    /// `max_schedules` cap cut the search short).
    pub exhausted: bool,
}

/// Advances DFS state: the decision prefix that flips the deepest
/// not-yet-exhausted branch of the previous execution, or `None` when
/// every branch is spent.
fn next_prefix(decisions: &[Decision]) -> Option<Vec<u8>> {
    for i in (0..decisions.len()).rev() {
        let d = decisions[i];
        if d.choice + 1 < d.options {
            let mut prefix: Vec<u8> = decisions[..i].iter().map(|x| x.choice).collect();
            prefix.push(d.choice + 1);
            return Some(prefix);
        }
    }
    None
}

fn dfs(
    config: ExploreConfig,
    kill: Option<(String, u64)>,
    make: &dyn Fn() -> ExecSpec,
) -> (ExploreReport, bool) {
    let mut prefix = Vec::new();
    let mut schedules = 0u64;
    let mut ok_executions = 0u64;
    let mut any_kill_fired = false;
    loop {
        if schedules >= config.max_schedules {
            return (
                ExploreReport { schedules, ok_executions, counterexample: None, exhausted: false },
                any_kill_fired,
            );
        }
        let result = run_one(
            make(),
            RunParams {
                prescribed: prefix,
                rng_seed: None,
                preemption_bound: config.preemption_bound,
                max_steps: config.max_steps,
                kill: kill.clone(),
            },
        );
        schedules += 1;
        any_kill_fired |= result.kill_fired;
        if result.outcome == ExecOutcome::Ok {
            ok_executions += 1;
        } else {
            let mut trace = ScheduleTrace::from_decisions(0, &result.decisions);
            if let Some((victim, nth)) = &kill {
                trace = trace.with_kill(victim, *nth);
            }
            return (
                ExploreReport {
                    schedules,
                    ok_executions,
                    counterexample: Some(Counterexample { trace, outcome: result.outcome }),
                    exhausted: false,
                },
                any_kill_fired,
            );
        }
        match next_prefix(&result.decisions) {
            Some(p) => prefix = p,
            None => {
                return (
                    ExploreReport {
                        schedules,
                        ok_executions,
                        counterexample: None,
                        exhausted: true,
                    },
                    any_kill_fired,
                )
            }
        }
    }
}

/// Bounded-exhaustive DFS over every schedule of the scenario `make`
/// builds, under `config`'s preemption bound. Stops at the first
/// counterexample.
pub fn explore(config: ExploreConfig, make: impl Fn() -> ExecSpec) -> ExploreReport {
    dfs(config, None, &make).0
}

/// What a random walk found.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RandomReport {
    /// Executions run.
    pub runs: u64,
    /// How many *distinct* schedules those runs covered (random walks
    /// collide; this is the honest coverage number).
    pub distinct_schedules: u64,
    /// The first failing execution, if any.
    pub counterexample: Option<Counterexample>,
}

/// Runs `runs` randomly-scheduled executions seeded from `seed` (each
/// run perturbs the seed deterministically, so the whole walk replays
/// from one number). Complements the DFS: random walks reach deep
/// interleavings the preemption bound excludes.
pub fn explore_random(
    config: ExploreConfig,
    seed: u64,
    runs: u64,
    make: impl Fn() -> ExecSpec,
) -> RandomReport {
    let mut distinct: HashSet<Vec<u8>> = HashSet::new();
    for i in 0..runs {
        let run_seed = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let result = run_one(
            make(),
            RunParams {
                prescribed: Vec::new(),
                rng_seed: Some(run_seed),
                preemption_bound: config.preemption_bound,
                max_steps: config.max_steps,
                kill: None,
            },
        );
        distinct.insert(result.decisions.iter().map(|d| d.choice).collect());
        if result.outcome != ExecOutcome::Ok {
            return RandomReport {
                runs: i + 1,
                distinct_schedules: distinct.len() as u64,
                counterexample: Some(Counterexample {
                    trace: ScheduleTrace::from_decisions(run_seed, &result.decisions),
                    outcome: result.outcome,
                }),
            };
        }
    }
    RandomReport { runs, distinct_schedules: distinct.len() as u64, counterexample: None }
}

/// Replays a trace against the scenario `make` builds, reproducing the
/// recorded execution decision-for-decision.
pub fn replay(config: ExploreConfig, trace: &ScheduleTrace, make: impl Fn() -> ExecSpec) -> ExecResult {
    run_one(
        make(),
        RunParams {
            prescribed: trace.decisions.clone(),
            rng_seed: (trace.seed != 0).then_some(trace.seed),
            preemption_bound: config.preemption_bound,
            max_steps: config.max_steps,
            kill: (!trace.victim.is_empty()).then(|| (trace.victim.clone(), trace.kill_nth)),
        },
    )
}

/// What a crash-site sweep found.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SweepReport {
    /// Crash sites tried (the victim was killed at its 1st, 2nd, …
    /// schedule point until it ran out of points).
    pub sites: u64,
    /// Total executions across all sites.
    pub schedules: u64,
    /// The first failing execution, if any; its trace carries the
    /// victim and site for replay.
    pub counterexample: Option<Counterexample>,
}

/// Kills the thread named `victim` at **every** one of its schedule
/// points in turn, running a full bounded DFS per crash site: for site
/// `k`, every explored schedule crashes the victim at its `k`-th shadow
/// operation mid-flight (lock guards release on unwind, stores before
/// the site stay, stores after never happen). The sweep ends at the
/// first site no schedule reaches — the victim has fewer points.
///
/// This is how the Tary-before-Bary crash invariant gets checked at
/// every instruction boundary of `TxUpdate` rather than at the
/// handful of named chaos fault points.
pub fn crash_sweep(
    config: ExploreConfig,
    victim: &str,
    make: impl Fn() -> ExecSpec,
) -> SweepReport {
    let mut sites = 0u64;
    let mut schedules = 0u64;
    for k in 1.. {
        let (report, any_fired) = dfs(config, Some((victim.to_string(), k)), &make);
        schedules += report.schedules;
        if let Some(cx) = report.counterexample {
            sites += 1;
            return SweepReport { sites, schedules, counterexample: Some(cx) };
        }
        if !any_fired {
            // No schedule reached the k-th victim point: sweep done.
            return SweepReport { sites, schedules, counterexample: None };
        }
        sites += 1;
    }
    unreachable!("the sweep terminates when the victim runs out of schedule points")
}
