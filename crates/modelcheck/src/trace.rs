//! Replayable counterexample traces.
//!
//! A schedule is fully determined by its decision list (plus the RNG
//! seed that produced decisions beyond any recorded prefix, and the
//! crash-site plan if one was armed), so a failing interleaving can be
//! shipped as a short string, pasted into a bug report, and replayed
//! bit-for-bit on any host. The wire format mirrors the chaos crate's
//! `FaultPlan` style: one line, `;`-separated `key=value` fields, e.g.
//!
//! ```text
//! seed=42;decisions=1.0.2;victim=updater;kill=3
//! ```
//!
//! `decisions` lists the branch choices in order (`.`-separated);
//! `victim`/`kill` are present only when the trace crashes a thread at
//! its `kill`-th schedule point. The struct also derives the workspace
//! `serde` traits so traces can ride inside any serialized report.

use core::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::sched::Decision;

/// A replayable schedule: everything `replay` needs to reproduce one
/// execution exactly.
#[derive(Serialize, Deserialize, Clone, PartialEq, Eq, Debug, Default)]
pub struct ScheduleTrace {
    /// RNG seed for decisions past the recorded prefix (0 = none; DFS
    /// traces are fully recorded and never consult an RNG).
    pub seed: u64,
    /// The recorded branch choices, in schedule order.
    pub decisions: Vec<u8>,
    /// Name of the thread the crash-site sweep killed (empty = no kill).
    pub victim: String,
    /// Which of the victim's schedule points the kill fired at
    /// (1-based; 0 = no kill).
    pub kill_nth: u64,
}

/// A malformed trace wire string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceParseError(pub String);

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed schedule trace: {}", self.0)
    }
}

impl std::error::Error for TraceParseError {}

impl ScheduleTrace {
    /// Builds a trace from an execution's recorded decisions.
    pub fn from_decisions(seed: u64, decisions: &[Decision]) -> Self {
        ScheduleTrace {
            seed,
            decisions: decisions.iter().map(|d| d.choice).collect(),
            victim: String::new(),
            kill_nth: 0,
        }
    }

    /// Adds the crash-site the trace must replay.
    #[must_use]
    pub fn with_kill(mut self, victim: &str, nth: u64) -> Self {
        self.victim = victim.to_string();
        self.kill_nth = nth;
        self
    }

    /// Serializes to the one-line wire format.
    pub fn wire(&self) -> String {
        let decisions = self
            .decisions
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(".");
        let mut s = format!("seed={};decisions={decisions}", self.seed);
        if !self.victim.is_empty() {
            s.push_str(&format!(";victim={};kill={}", self.victim, self.kill_nth));
        }
        s
    }

    /// Parses the wire format produced by [`Self::wire`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceParseError`] on any malformed field.
    pub fn parse(wire: &str) -> Result<Self, TraceParseError> {
        let mut trace = ScheduleTrace::default();
        let mut saw_seed = false;
        for part in wire.trim().split(';') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| TraceParseError(format!("field without '=': {part:?}")))?;
            match key {
                "seed" => {
                    trace.seed = value
                        .parse()
                        .map_err(|_| TraceParseError(format!("bad seed {value:?}")))?;
                    saw_seed = true;
                }
                "decisions" => {
                    if !value.is_empty() {
                        trace.decisions = value
                            .split('.')
                            .map(u8::from_str)
                            .collect::<Result<_, _>>()
                            .map_err(|_| {
                                TraceParseError(format!("bad decision list {value:?}"))
                            })?;
                    }
                }
                "victim" => trace.victim = value.to_string(),
                "kill" => {
                    trace.kill_nth = value
                        .parse()
                        .map_err(|_| TraceParseError(format!("bad kill index {value:?}")))?;
                }
                other => return Err(TraceParseError(format!("unknown field {other:?}"))),
            }
        }
        if !saw_seed {
            return Err(TraceParseError("missing seed field".to_string()));
        }
        if trace.victim.is_empty() != (trace.kill_nth == 0) {
            return Err(TraceParseError("victim and kill must appear together".to_string()));
        }
        Ok(trace)
    }
}

impl fmt::Display for ScheduleTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.wire())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trips() {
        let t = ScheduleTrace { seed: 42, decisions: vec![1, 0, 2], ..Default::default() };
        assert_eq!(t.wire(), "seed=42;decisions=1.0.2");
        assert_eq!(ScheduleTrace::parse(&t.wire()).unwrap(), t);

        let k = t.clone().with_kill("updater", 3);
        assert_eq!(k.wire(), "seed=42;decisions=1.0.2;victim=updater;kill=3");
        assert_eq!(ScheduleTrace::parse(&k.wire()).unwrap(), k);
    }

    #[test]
    fn empty_decisions_round_trip() {
        let t = ScheduleTrace { seed: 7, ..Default::default() };
        assert_eq!(ScheduleTrace::parse(&t.wire()).unwrap(), t);
    }

    #[test]
    fn malformed_wires_are_rejected() {
        assert!(ScheduleTrace::parse("decisions=1").is_err(), "missing seed");
        assert!(ScheduleTrace::parse("seed=x").is_err(), "bad seed");
        assert!(ScheduleTrace::parse("seed=1;decisions=1.a").is_err(), "bad decision");
        assert!(ScheduleTrace::parse("seed=1;victim=u").is_err(), "victim without kill");
        assert!(ScheduleTrace::parse("seed=1;kill=2").is_err(), "kill without victim");
        assert!(ScheduleTrace::parse("seed=1;bogus=3").is_err(), "unknown field");
    }

    #[test]
    fn serde_round_trips() {
        // The workspace serde shim pairs with the module wire format for
        // byte-level round trips; here the derives are exercised via the
        // shim's own test helper surface: Serialize/Deserialize compile
        // and the Display form is stable.
        let t = ScheduleTrace { seed: 9, decisions: vec![0, 1], ..Default::default() }
            .with_kill("updater", 2);
        assert_eq!(format!("{t}"), t.wire());
    }
}
