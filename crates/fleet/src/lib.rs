//! A supervision tree over a fleet of MCFI processes.
//!
//! One [`Supervisor`](mcfi_supervisor::Supervisor) heals a single
//! process; this crate composes N of them into a [`Fleet`] of
//! *independent fault domains* — one per tenant — and adds the layer a
//! multi-tenant deployment needs on top of per-process self-healing:
//!
//! * **One-for-one restarts with an intensity window** — a tenant whose
//!   request fails terminally (a fault, an enforced violation, a blown
//!   step ceiling, a wedged updater) is restarted alone, Erlang-style:
//!   its process is rebooted from its [`TenantSpec`] while every other
//!   tenant keeps serving. More than [`RestartStrategy::max_restarts`]
//!   restarts inside [`RestartStrategy::window`] ticks escalates the
//!   tenant to [`TenantHealth::Banned`] — the supervision tree gives up
//!   on that child for good.
//! * **Per-tenant circuit breaker** — a freshly restarted tenant is
//!   [`TenantHealth::Quarantined`]: its requests are shed (counted, not
//!   served) until a seeded [`Backoff`] delay expires, then a single
//!   half-open probe is let through. A clean probe steps the tenant back
//!   up through [`TenantHealth::Degraded`] to healthy; a failed probe
//!   re-trips the breaker with a longer delay.
//! * **Fleet-wide load shedding** — when more than
//!   [`FleetOptions::shed_threshold_pct`] percent of tenants are
//!   unhealthy the fleet is *overloaded*: requests to `Degraded` tenants
//!   are shed too, reserving capacity for the healthy majority.
//!   Breaker probes are exempt — they are the only path out of
//!   overload.
//!
//! Everything is deterministic under a seed: the request driver
//! ([`Schedule`]), the per-tenant chaos plans a [`Storm`] derives, and
//! the breaker's jittered backoff all run off explicit seeds, so the
//! same configuration replays to bit-identical [`FleetStats`].
//!
//! At [`FleetOptions::threads`] > 1 the same request budget is driven
//! by a pool of real OS threads with per-worker deques and work
//! stealing: each tenant's requests stay ordered (a tenant is one fault
//! domain and one lock), but tenants migrate between workers as the
//! pool balances itself. Wall-clock interleaving is no longer
//! deterministic — what survives, and what `tests/fleet_concurrent.rs`
//! asserts, are the conservation laws (every scheduled request is
//! served or shed exactly once, restarts are neither lost nor double
//! counted) plus each tenant's *local* trajectory, which depends only
//! on its own tick sequence. `threads = 1` keeps the original
//! deterministic tick loop byte-for-byte.
//!
//! Isolation falls out of construction: tenants share no tables, no
//! sandbox, and no clocks, and every cross-tenant decision (scheduling,
//! overload) only *sheds* requests — it never touches a process. A
//! tenant's served-request trajectory is therefore a pure function of
//! its own spec, plan, and local tick sequence, which is what
//! [`solo_replay`] exploits to prove storm isolation byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mcfi_chaos::{Backoff, ChaosInjector, FaultPlan, FaultPoint, ALL_POINTS, RUNTIME_POINTS};
use mcfi_module::Module;
use mcfi_runtime::{LoadError, Outcome, Process, ProcessOptions, RunResult, SharedImage};
use mcfi_supervisor::{RecoveryPolicy, Supervisor, SupervisorError, SupervisorStats};
use serde::Serialize;

/// Everything needed to (re)boot one tenant's process from scratch.
#[derive(Clone)]
pub struct TenantSpec {
    /// Tenant name (stats key, backoff jitter key).
    pub name: String,
    /// When set, the tenant boots by *attaching* to this [`SharedImage`]
    /// instead of loading `modules` privately: its ID tables become a
    /// delta shard over the image base, so one batched image update
    /// retargets this tenant together with every other attachee — and a
    /// restart re-attaches to the same image. `modules` is ignored (the
    /// image carries the module set).
    pub image: Option<SharedImage>,
    /// Modules loaded at boot (trusted boot set). Ignored when `image`
    /// is set.
    pub modules: Vec<Module>,
    /// Libraries registered for the guest to `dlopen` later.
    pub libraries: Vec<(String, Module)>,
    /// Entry symbol each request runs.
    pub entry: String,
    /// Process construction options.
    pub options: ProcessOptions,
    /// Per-process recovery policy (checkpointing, quarantine, lease).
    pub recovery: RecoveryPolicy,
}

/// A tenant's position in the health ladder.
///
/// `Healthy ⇄ Degraded ⇄ Quarantined → Banned`: clean requests climb
/// one rung, recovered requests hold at `Degraded`, terminal failures
/// restart the process and trip the breaker to `Quarantined`, and
/// blowing the restart-intensity window is a one-way trip to `Banned`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum TenantHealth {
    /// Serving normally.
    Healthy,
    /// Serving, but the last request needed supervisor recovery (or the
    /// tenant is climbing back from quarantine). Shed under overload.
    Degraded,
    /// Breaker open after a restart: requests shed until the backoff
    /// expires, then one half-open probe.
    Quarantined,
    /// Restart intensity exceeded: permanently shed, never rebooted.
    Banned,
}

/// One-for-one restart policy: how many restarts a tenant gets inside a
/// sliding window before the tree gives up on it.
#[derive(Clone, Copy, Debug)]
pub struct RestartStrategy {
    /// Restarts tolerated within `window` before the tenant is banned.
    pub max_restarts: u32,
    /// Intensity window, in tenant-local ticks.
    pub window: u64,
    /// Seeded backoff for the circuit breaker's retry delay (ticks);
    /// attempt number = the tenant's consecutive-failure count.
    pub backoff: Backoff,
}

impl Default for RestartStrategy {
    fn default() -> Self {
        RestartStrategy {
            max_restarts: 3,
            window: 64,
            backoff: Backoff::new(0x6d2e_37a9, 4),
        }
    }
}

/// How the request driver picks the next tenant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Schedule {
    /// Tenant `tick % n`: every tenant gets exactly `total / n` ticks.
    RoundRobin,
    /// Seeded xorshift draw per tick (deterministic, uneven).
    Seeded(u64),
}

/// Fleet-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct FleetOptions {
    /// Request-driver schedule.
    pub schedule: Schedule,
    /// One-for-one restart policy shared by all tenants.
    pub restart: RestartStrategy,
    /// Percent of tenants that may be unhealthy (non-`Healthy`) before
    /// the fleet enters overload and sheds `Degraded` tenants too.
    pub shed_threshold_pct: u32,
    /// Per-request step ceiling applied to every tenant process
    /// (0 = keep each spec's own `max_steps`). A livelocked request
    /// times out with [`Outcome::StepLimit`] instead of starving the
    /// driver.
    pub max_steps_per_request: u64,
    /// Keep every served [`RunResult`] per tenant (isolation proofs;
    /// costs memory on long drives).
    pub record_results: bool,
    /// Worker threads driving requests. `0` or `1` keeps the original
    /// deterministic single-threaded tick loop; above that, a
    /// work-stealing pool of real OS threads serves the same per-tenant
    /// request budget concurrently (see the crate docs for what stays
    /// deterministic).
    pub threads: usize,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            schedule: Schedule::RoundRobin,
            restart: RestartStrategy::default(),
            shed_threshold_pct: 50,
            max_steps_per_request: 0,
            record_results: false,
            threads: 1,
        }
    }
}

/// A fleet-wide chaos storm: a seed plus a shape, fanned out into one
/// independent [`FaultPlan`] per tenant by [`tenant_plan`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Storm {
    /// Storm seed; each tenant's plan is derived from it and the
    /// tenant's index, so plans are decorrelated but replayable.
    pub seed: u64,
    /// The storm's shape.
    pub kind: StormKind,
}

/// The shape of a [`Storm`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StormKind {
    /// `faults` random faults per tenant, drawn from the runtime-
    /// reachable points (exactly [`FaultPlan::random`]).
    Random {
        /// Faults per tenant plan.
        faults: usize,
    },
    /// Every runtime-reachable fault point armed once per tenant, with
    /// seed-derived occurrence counts and parameters.
    AllPoints,
}

/// The per-tenant [`FaultPlan`] a storm fans out to tenant `index`.
///
/// Pure and public so a solo replay can arm the *exact* plan a fleet
/// tenant saw.
pub fn tenant_plan(storm: &Storm, index: usize) -> FaultPlan {
    let seed = splitmix64(storm.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    match storm.kind {
        StormKind::Random { faults } => FaultPlan::random(seed, faults),
        StormKind::AllPoints => ALL_POINTS[..RUNTIME_POINTS]
            .iter()
            .enumerate()
            .fold(FaultPlan { seed, faults: Vec::new() }, |plan, (k, &point)| {
                let draw = splitmix64(seed.wrapping_add(k as u64));
                let nth = 1 + draw % 3;
                let param = match point {
                    FaultPoint::UpdaterStall => draw % 500,
                    FaultPoint::TornTary => draw % 8,
                    FaultPoint::VersionWarp => 1 + draw % 8,
                    FaultPoint::MalformedImage => draw % 4096,
                    _ => 0,
                };
                plan.with(point, nth, param)
            }),
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Why a fleet could not be built.
#[derive(Clone, PartialEq, Debug)]
pub enum FleetError {
    /// A fleet needs at least one tenant.
    NoTenants,
    /// A tenant's initial boot failed (bad layout, unresolved symbol…).
    Boot {
        /// The tenant that failed to boot.
        tenant: String,
        /// The underlying load failure.
        error: LoadError,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoTenants => write!(f, "a fleet needs at least one tenant"),
            FleetError::Boot { tenant, error } => {
                write!(f, "tenant `{tenant}` failed to boot: {error}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// Per-tenant counters (all deterministic under the fleet's seeds).
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Health at the time the stats were taken.
    pub health: TenantHealth,
    /// Requests scheduled to this tenant (served + shed).
    pub requests: u64,
    /// Requests that actually ran on the tenant's process.
    pub served: u64,
    /// Requests shed because the tenant is banned.
    pub banned_sheds: u64,
    /// Requests shed by the open circuit breaker.
    pub breaker_sheds: u64,
    /// Requests shed by fleet-wide overload.
    pub overload_sheds: u64,
    /// Served requests that ended in a terminal failure.
    pub failures: u64,
    /// One-for-one restarts performed.
    pub restarts: u64,
    /// Wedged-updater errors surfaced by the tenant's supervisor.
    pub wedges: u64,
    /// Guest steps executed across all served requests.
    pub steps: u64,
    /// Simulated cycles across all served requests.
    pub cycles: u64,
    /// Chaos faults fired against this tenant (all process lifetimes).
    pub faults_fired: u64,
    /// Order-sensitive FNV fold of every served [`RunResult`].
    pub digest: u64,
    /// The tenant's supervisor counters, accumulated across restarts.
    pub supervisor: SupervisorStats,
}

/// Fleet-level health verdict, derived from the counters: work that was
/// dropped is named as such instead of vanishing into a served/requests
/// gap. The `SupervisorError::Wedged`-style contract, lifted to the
/// fleet: load shedding is a *verdict*, not a silent subtraction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum FleetVerdict {
    /// Every scheduled request was served and every tenant ended healthy.
    Healthy,
    /// No fleet-wide load shedding, but some work was shed by bans or
    /// open circuit breakers, or some tenant ended below
    /// [`TenantHealth::Healthy`].
    Degraded,
    /// Fleet-wide load shedding activated: at least one request was
    /// dropped because too many tenants were unhealthy at once.
    Shedding,
}

/// Fleet-level rollup plus the per-tenant breakdown.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct FleetStats {
    /// Tenants in the fleet.
    pub tenants: u64,
    /// Total requests driven.
    pub requests: u64,
    /// Requests served (ran on some tenant's process).
    pub served: u64,
    /// Requests shed, all causes.
    pub shed: u64,
    /// One-for-one restarts across the fleet.
    pub restarts: u64,
    /// Tenants escalated to [`TenantHealth::Banned`].
    pub bans: u64,
    /// Guest steps executed fleet-wide.
    pub steps: u64,
    /// Chaos faults fired fleet-wide.
    pub faults_fired: u64,
    /// Order-sensitive fold of the per-tenant digests.
    pub digest: u64,
    /// Whether the fleet served everything, degraded, or load-shed work
    /// (see [`FleetVerdict`]).
    pub verdict: FleetVerdict,
    /// Per-tenant breakdown, in tenant order.
    pub per_tenant: Vec<TenantStats>,
    /// Per-worker breakdown of the most recent multithreaded drive
    /// (empty after single-threaded drives).
    pub workers: Vec<WorkerStats>,
}

/// Per-worker counters from one multithreaded drive
/// ([`FleetOptions::threads`] > 1).
#[derive(Clone, PartialEq, Debug, Default, Serialize)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: u64,
    /// Task slices executed (a slice = one scheduling quantum of one
    /// tenant's queued requests).
    pub slices: u64,
    /// Requests this worker drove.
    pub requests: u64,
    /// Slices obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Chaos-injected worker stalls served
    /// ([`FaultPoint::WorkerStall`]).
    pub stalls: u64,
}

/// Order-sensitive fold of a served run into a tenant digest. Hashes
/// the full `Debug` rendering of the [`RunResult`], so *every* field —
/// outcome, stdout, counters — participates; two tenants diverge in the
/// digest iff they diverge byte-for-byte in some served result.
fn fold_digest(acc: u64, r: &RunResult) -> u64 {
    acc.rotate_left(13) ^ mcfi_chaos::fnv64(format!("{r:?}").as_bytes())
}

struct Tenant {
    spec: TenantSpec,
    sup: Supervisor,
    health: TenantHealth,
    /// This tenant's own request clock (breaker and intensity window
    /// both run on it, so the tenant's trajectory is independent of how
    /// the fleet interleaves other tenants).
    local_tick: u64,
    /// Local tick at which the open breaker admits a half-open probe.
    retry_at: u64,
    /// Consecutive terminal failures (backoff attempt number).
    failures_streak: u32,
    /// Local ticks of recent restarts, pruned to the intensity window.
    restart_ticks: VecDeque<u64>,
    /// The chaos plan re-armed on every reboot (storms survive
    /// restarts: a restarted process faces the same weather).
    plan: Option<FaultPlan>,
    injector: Option<Arc<ChaosInjector>>,
    /// Faults fired in *previous* process lifetimes.
    faults_fired_past: u64,
    /// Supervisor counters from previous lifetimes.
    sup_past: SupervisorStats,
    stats: TenantStats,
    results: Vec<RunResult>,
}

impl Tenant {
    fn faults_fired(&self) -> u64 {
        self.faults_fired_past
            + self.injector.as_ref().map_or(0, |i| i.fired().len() as u64)
    }

    fn supervisor_stats(&self) -> SupervisorStats {
        let cur = self.sup.stats();
        let past = &self.sup_past;
        SupervisorStats {
            runs: past.runs + cur.runs,
            recoveries: past.recoveries + cur.recoveries,
            failed_restores: past.failed_restores + cur.failed_restores,
            watchdog_heals: past.watchdog_heals + cur.watchdog_heals,
            direct_repairs: past.direct_repairs + cur.direct_repairs,
            escalated: past.escalated || cur.escalated,
        }
    }
}

/// One tenant slot: the tenant behind its serving lock (a tenant is one
/// fault domain *and* one unit of mutual exclusion — its requests never
/// run concurrently), plus a lock-free health mirror so overload
/// decisions never take tenant locks.
struct Slot {
    tenant: Mutex<Tenant>,
    health: AtomicU8,
}

fn health_code(h: TenantHealth) -> u8 {
    match h {
        TenantHealth::Healthy => 0,
        TenantHealth::Degraded => 1,
        TenantHealth::Quarantined => 2,
        TenantHealth::Banned => 3,
    }
}

/// Whether more than the threshold fraction of tenants is unhealthy,
/// judged from the lock-free health mirrors.
fn overloaded_mirror(slots: &[Slot], shed_threshold_pct: u32) -> bool {
    let unhealthy = slots.iter().filter(|s| s.health.load(Ordering::Relaxed) != 0).count();
    unhealthy * 100 > shed_threshold_pct as usize * slots.len()
}

/// The supervision tree: N tenants, each an independent fault domain,
/// plus the deterministic request driver (see the crate docs).
pub struct Fleet {
    tenants: Vec<Slot>,
    opts: FleetOptions,
    global_tick: u64,
    sched_state: u64,
    workers: Vec<WorkerStats>,
}

impl Fleet {
    /// Boots every tenant. No chaos is armed yet — see
    /// [`Fleet::arm_storm`] / [`Fleet::arm_tenant_plan`].
    pub fn new(specs: Vec<TenantSpec>, opts: FleetOptions) -> Result<Fleet, FleetError> {
        if specs.is_empty() {
            return Err(FleetError::NoTenants);
        }
        let sched_state = match opts.schedule {
            Schedule::Seeded(seed) => seed | 1,
            Schedule::RoundRobin => 0,
        };
        let mut tenants = Vec::with_capacity(specs.len());
        for spec in specs {
            let sup = boot(&spec, opts.max_steps_per_request)
                .map_err(|error| FleetError::Boot { tenant: spec.name.clone(), error })?;
            let stats = TenantStats {
                name: spec.name.clone(),
                health: TenantHealth::Healthy,
                requests: 0,
                served: 0,
                banned_sheds: 0,
                breaker_sheds: 0,
                overload_sheds: 0,
                failures: 0,
                restarts: 0,
                wedges: 0,
                steps: 0,
                cycles: 0,
                faults_fired: 0,
                digest: 0,
                supervisor: SupervisorStats::default(),
            };
            tenants.push(Slot {
                tenant: Mutex::new(Tenant {
                    spec,
                    sup,
                    health: TenantHealth::Healthy,
                    local_tick: 0,
                    retry_at: 0,
                    failures_streak: 0,
                    restart_ticks: VecDeque::new(),
                    plan: None,
                    injector: None,
                    faults_fired_past: 0,
                    sup_past: SupervisorStats::default(),
                    stats,
                    results: Vec::new(),
                }),
                health: AtomicU8::new(health_code(TenantHealth::Healthy)),
            });
        }
        Ok(Fleet { tenants, opts, global_tick: 0, sched_state, workers: Vec::new() })
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the fleet has no tenants (never true: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Arms `plan` on tenant `index`, now and after every restart of
    /// that tenant.
    ///
    /// # Panics
    ///
    /// If `index` is out of range.
    pub fn arm_tenant_plan(&mut self, index: usize, plan: FaultPlan) {
        let t = &mut *self.tenants[index].tenant.lock().expect("tenant lock");
        let injector = t.sup.process_mut().arm_chaos(plan.clone());
        t.plan = Some(plan);
        t.injector = Some(injector);
    }

    /// Fans `storm` out across the whole fleet: every tenant gets its
    /// own derived plan (see [`tenant_plan`]).
    pub fn arm_storm(&mut self, storm: Storm) {
        for i in 0..self.tenants.len() {
            self.arm_tenant_plan(i, tenant_plan(&storm, i));
        }
    }

    /// The health of tenant `index`.
    pub fn health(&self, index: usize) -> TenantHealth {
        self.tenants[index].tenant.lock().expect("tenant lock").health
    }

    /// The served [`RunResult`]s of tenant `index`, cloned out of its
    /// slot (empty unless [`FleetOptions::record_results`] is set).
    pub fn results(&self, index: usize) -> Vec<RunResult> {
        self.tenants[index].tenant.lock().expect("tenant lock").results.clone()
    }

    /// Per-worker counters from the most recent multithreaded drive
    /// (empty for single-threaded fleets).
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.workers
    }

    /// Drives `total` requests through the schedule — the deterministic
    /// tick loop at [`FleetOptions::threads`] ≤ 1, the work-stealing
    /// pool above that.
    pub fn run_requests(&mut self, total: u64) {
        if self.opts.threads > 1 {
            self.run_requests_mt(total);
            return;
        }
        for _ in 0..total {
            let i = self.pick();
            self.global_tick += 1;
            let overloaded = self.overloaded();
            let slot = &self.tenants[i];
            let mut t = slot.tenant.lock().expect("tenant lock");
            tick_tenant(&self.opts, &mut t, overloaded);
            slot.health.store(health_code(t.health), Ordering::Relaxed);
        }
    }

    /// The work-stealing drive: the *same* pick sequence as the
    /// deterministic driver is drained up front into per-tenant request
    /// budgets (so every tenant sees the identical local-tick
    /// trajectory), then a scoped pool of real OS threads serves those
    /// budgets from per-worker deques, stealing from a victim's deque
    /// when its own runs dry. A tenant is served in `SLICE`-request
    /// quanta and re-queued, so uneven tenants migrate between workers
    /// instead of pinning one.
    fn run_requests_mt(&mut self, total: u64) {
        /// Requests a worker serves from one tenant before re-queueing
        /// it: small enough that stealing balances uneven tenants,
        /// large enough to amortize deque traffic.
        const SLICE: u64 = 8;
        struct Task {
            tenant: usize,
            remaining: u64,
        }

        let mut budget = vec![0u64; self.tenants.len()];
        for _ in 0..total {
            let i = self.pick();
            self.global_tick += 1;
            budget[i] += 1;
        }

        let threads = self.opts.threads;
        let deques: Vec<Mutex<VecDeque<Task>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        let mut open_tasks = 0usize;
        for (tenant, &remaining) in budget.iter().enumerate() {
            if remaining > 0 {
                deques[tenant % threads]
                    .lock()
                    .expect("deque lock")
                    .push_back(Task { tenant, remaining });
                open_tasks += 1;
            }
        }
        // Tasks still queued or in a worker's hands; workers exit only
        // when every task has fully drained, so a stolen tenant's tail
        // can never be dropped.
        let open = AtomicUsize::new(open_tasks);

        let opts = &self.opts;
        let slots = &self.tenants;
        let deques = &deques;
        let open = &open;
        self.workers = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        let mut ws =
                            WorkerStats { worker: w as u64, ..WorkerStats::default() };
                        loop {
                            let mut stolen = false;
                            let mut task =
                                deques[w].lock().expect("deque lock").pop_back();
                            if task.is_none() {
                                for k in 1..threads {
                                    let victim = (w + k) % threads;
                                    task = deques[victim]
                                        .lock()
                                        .expect("deque lock")
                                        .pop_front();
                                    if task.is_some() {
                                        stolen = true;
                                        break;
                                    }
                                }
                            }
                            let Some(task) = task else {
                                if open.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                                continue;
                            };
                            if stolen {
                                ws.steals += 1;
                            }
                            ws.slices += 1;
                            let slot = &slots[task.tenant];
                            let mut t = slot.tenant.lock().expect("tenant lock");
                            if let Some(stall) = t
                                .injector
                                .as_ref()
                                .and_then(|i| i.fire(FaultPoint::WorkerStall))
                            {
                                // A descheduled worker: burn the planned
                                // quantum while holding the tenant, so
                                // peers see a genuinely stuck worker.
                                ws.stalls += 1;
                                for _ in 0..stall.min(10_000) {
                                    std::hint::spin_loop();
                                }
                                std::thread::yield_now();
                            }
                            let n = task.remaining.min(SLICE);
                            for _ in 0..n {
                                let overloaded =
                                    overloaded_mirror(slots, opts.shed_threshold_pct);
                                tick_tenant(opts, &mut t, overloaded);
                                slot.health
                                    .store(health_code(t.health), Ordering::Relaxed);
                            }
                            ws.requests += n;
                            // StealBias hands the continuation to a
                            // victim's deque instead of our own, forcing
                            // the cross-worker migration path.
                            let handoff = t
                                .injector
                                .as_ref()
                                .and_then(|i| i.fire(FaultPoint::StealBias))
                                .filter(|_| threads > 1)
                                .map(|p| (w + 1 + p as usize % (threads - 1)) % threads);
                            drop(t);
                            let remaining = task.remaining - n;
                            if remaining > 0 {
                                deques[handoff.unwrap_or(w)]
                                    .lock()
                                    .expect("deque lock")
                                    .push_back(Task { tenant: task.tenant, remaining });
                            } else {
                                open.fetch_sub(1, Ordering::AcqRel);
                            }
                        }
                        ws
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet worker thread panicked"))
                .collect()
        });
    }

    fn pick(&mut self) -> usize {
        let n = self.tenants.len() as u64;
        match self.opts.schedule {
            Schedule::RoundRobin => (self.global_tick % n) as usize,
            Schedule::Seeded(_) => {
                // xorshift64; state seeded (and forced odd) at boot.
                let mut x = self.sched_state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.sched_state = x;
                (x % n) as usize
            }
        }
    }

    /// Whether more than the threshold fraction of tenants is unhealthy.
    fn overloaded(&self) -> bool {
        overloaded_mirror(&self.tenants, self.opts.shed_threshold_pct)
    }

    /// Snapshot of every counter, per tenant and rolled up.
    pub fn stats(&self) -> FleetStats {
        let per_tenant: Vec<TenantStats> = self
            .tenants
            .iter()
            .map(|slot| {
                let t = slot.tenant.lock().expect("tenant lock");
                let mut s = t.stats.clone();
                s.health = t.health;
                s.faults_fired = t.faults_fired();
                s.supervisor = t.supervisor_stats();
                s
            })
            .collect();
        let mut roll = FleetStats {
            tenants: per_tenant.len() as u64,
            requests: 0,
            served: 0,
            shed: 0,
            restarts: 0,
            bans: 0,
            steps: 0,
            faults_fired: 0,
            digest: 0,
            verdict: FleetVerdict::Healthy,
            per_tenant,
            workers: self.workers.clone(),
        };
        let mut overload_shed = 0u64;
        for s in &roll.per_tenant {
            roll.requests += s.requests;
            roll.served += s.served;
            roll.shed += s.banned_sheds + s.breaker_sheds + s.overload_sheds;
            overload_shed += s.overload_sheds;
            roll.restarts += s.restarts;
            roll.bans += u64::from(s.health == TenantHealth::Banned);
            roll.steps += s.steps;
            roll.faults_fired += s.faults_fired;
            roll.digest = roll.digest.rotate_left(13) ^ s.digest;
        }
        let all_healthy =
            roll.per_tenant.iter().all(|s| s.health == TenantHealth::Healthy);
        roll.verdict = if overload_shed > 0 {
            FleetVerdict::Shedding
        } else if roll.shed > 0 || !all_healthy {
            FleetVerdict::Degraded
        } else {
            FleetVerdict::Healthy
        };
        roll
    }
}

/// One scheduled request against one tenant. Shared verbatim by the
/// deterministic tick loop and the work-stealing workers: a request is
/// shed or served based only on the tenant's own state plus the
/// `overloaded` snapshot the caller took.
fn tick_tenant(opts: &FleetOptions, t: &mut Tenant, overloaded: bool) {
    t.local_tick += 1;
    t.stats.requests += 1;
    match t.health {
        TenantHealth::Banned => t.stats.banned_sheds += 1,
        TenantHealth::Quarantined if t.local_tick < t.retry_at => {
            t.stats.breaker_sheds += 1;
        }
        // Overload sheds Degraded tenants; Quarantined tenants past
        // their backoff still get their half-open probe (the only
        // path that can shrink the unhealthy set), and Healthy
        // tenants always serve.
        TenantHealth::Degraded if overloaded => t.stats.overload_sheds += 1,
        _ => serve_tenant(opts, t),
    }
}

fn serve_tenant(opts: &FleetOptions, t: &mut Tenant) {
    let recoveries_before = t.sup.stats().recoveries;
    let res = t.sup.run(&t.spec.entry);
    match res {
        Ok(r) => {
            t.stats.served += 1;
            t.stats.steps += r.steps;
            t.stats.cycles += r.cycles;
            t.stats.digest = fold_digest(t.stats.digest, &r);
            if opts.record_results {
                t.results.push(r.clone());
            }
            if matches!(r.outcome, Outcome::Exit { .. }) {
                t.failures_streak = 0;
                let recovered = t.sup.stats().recoveries > recoveries_before;
                t.health = match (t.health, recovered) {
                    // A recovery mid-request caps the climb at
                    // Degraded; a clean request climbs one rung.
                    (_, true) => TenantHealth::Degraded,
                    (TenantHealth::Quarantined, false) => TenantHealth::Degraded,
                    (_, false) => TenantHealth::Healthy,
                };
            } else {
                // Fault, enforced violation, or step-limit timeout:
                // terminal for this process lifetime.
                fail_tenant(opts, t);
            }
        }
        Err(SupervisorError::Load(_)) | Err(SupervisorError::Wedged { .. }) => {
            if matches!(res, Err(SupervisorError::Wedged { .. })) {
                t.stats.wedges += 1;
            }
            fail_tenant(opts, t);
        }
    }
}

/// One-for-one restart of a tenant, with intensity accounting.
fn fail_tenant(opts: &FleetOptions, t: &mut Tenant) {
    let restart = opts.restart;
    t.stats.failures += 1;
    t.failures_streak = t.failures_streak.saturating_add(1);
    let now = t.local_tick;
    t.restart_ticks.push_back(now);
    while let Some(&front) = t.restart_ticks.front() {
        if front + restart.window <= now {
            t.restart_ticks.pop_front();
        } else {
            break;
        }
    }
    if t.restart_ticks.len() as u64 > u64::from(restart.max_restarts) {
        // Intensity exceeded: the tree gives up on this child. The
        // dead process is not even rebooted — a banned tenant costs
        // the fleet nothing but a shed counter.
        t.health = TenantHealth::Banned;
        return;
    }
    t.sup_past = t.supervisor_stats();
    t.faults_fired_past = t.faults_fired();
    match boot(&t.spec, opts.max_steps_per_request) {
        Ok(mut sup) => {
            if let Some(plan) = &t.plan {
                t.injector = Some(sup.process_mut().arm_chaos(plan.clone()));
            }
            t.sup = sup;
            t.stats.restarts += 1;
            t.health = TenantHealth::Quarantined;
            t.retry_at =
                now + 1 + restart.backoff.delay(&t.spec.name, t.failures_streak);
        }
        // The spec booted once, so a reboot failure means the spec
        // itself has become unbootable — ban rather than retry a
        // boot loop forever.
        Err(_) => t.health = TenantHealth::Banned,
    }
}

/// Boots one tenant process — privately from its module list, or
/// attached to its [`SharedImage`] — and wraps it in a supervisor.
fn boot(spec: &TenantSpec, max_steps_per_request: u64) -> Result<Supervisor, LoadError> {
    let mut p = match &spec.image {
        Some(image) => image.attach_with(spec.options)?,
        None => {
            let mut p = Process::new(spec.options)?;
            p.load_all(spec.modules.clone())?;
            p
        }
    };
    for (name, module) in &spec.libraries {
        p.register_library(name, module.clone());
    }
    if max_steps_per_request > 0 {
        p.set_max_steps(max_steps_per_request);
    }
    Ok(Supervisor::new(p, spec.recovery))
}

/// Replays one tenant *alone*: a single-tenant fleet with the same
/// options, optionally armed with exactly `plan`, driven for `requests`
/// ticks (results recorded).
///
/// Because a tenant's served trajectory depends only on its own spec,
/// plan, and local tick sequence, a fleet tenant scheduled `requests`
/// times must produce byte-identical served [`RunResult`]s — the
/// cross-tenant isolation proof used by the storm tests.
pub fn solo_replay(
    spec: &TenantSpec,
    opts: &FleetOptions,
    plan: Option<FaultPlan>,
    requests: u64,
) -> Result<Fleet, FleetError> {
    let mut solo_opts = *opts;
    solo_opts.schedule = Schedule::RoundRobin;
    solo_opts.record_results = true;
    // Replays are a determinism proof: always the deterministic loop.
    solo_opts.threads = 1;
    let mut fleet = Fleet::new(vec![spec.clone()], solo_opts)?;
    if let Some(plan) = plan {
        fleet.arm_tenant_plan(0, plan);
    }
    fleet.run_requests(requests);
    Ok(fleet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfi_codegen::{compile_source, CodegenOptions};
    use mcfi_runtime::{stdlib, synth, ViolationPolicy};

    fn compile(name: &str, src: &str) -> Module {
        compile_source(name, src, &CodegenOptions::default()).unwrap_or_else(|e| panic!("{e}"))
    }

    fn spec(name: &str, src: &str, popts: ProcessOptions, recovery: RecoveryPolicy) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            image: None,
            modules: vec![
                synth::syscall_module(),
                compile("libms", stdlib::LIBMS_SRC),
                compile("start", stdlib::START_SRC),
                compile("prog", src),
            ],
            libraries: Vec::new(),
            entry: "__start".to_string(),
            options: popts,
            recovery,
        }
    }

    const OK_GUEST: &str = "int main(void) { int i = 0; int acc = 0;\n\
         while (i < 50) { acc = acc + i; i = i + 1; } return acc % 97; }";

    /// Violates under `Enforce`: every request is a terminal failure.
    const CRASHER: &str = "float fsq(float x) { return x * x; }\n\
         int main(void) {\n\
           void* raw = (void*)&fsq;\n\
           int (*f)(int) = (int(*)(int))raw;\n\
           return f(3);\n\
         }";

    fn healthy_spec(name: &str) -> TenantSpec {
        spec(name, OK_GUEST, ProcessOptions::default(), RecoveryPolicy::default())
    }

    fn crasher_spec(name: &str) -> TenantSpec {
        let popts =
            ProcessOptions { violation_policy: ViolationPolicy::Enforce, ..Default::default() };
        spec(name, CRASHER, popts, RecoveryPolicy::default())
    }

    #[test]
    fn a_healthy_fleet_serves_every_request() {
        let specs = (0..3).map(|i| healthy_spec(&format!("t{i}"))).collect();
        let mut fleet = Fleet::new(specs, FleetOptions::default()).expect("boots");
        fleet.run_requests(30);
        let s = fleet.stats();
        assert_eq!(s.requests, 30);
        assert_eq!(s.served, 30);
        assert_eq!(s.shed, 0);
        assert_eq!(s.restarts, 0);
        assert_eq!(s.bans, 0);
        assert_eq!(s.verdict, FleetVerdict::Healthy);
        for t in &s.per_tenant {
            assert_eq!(t.health, TenantHealth::Healthy);
            assert_eq!(t.requests, 10, "round-robin splits evenly");
            assert_ne!(t.digest, 0);
        }
        // All three tenants ran the same guest: identical digests.
        assert_eq!(s.per_tenant[0].digest, s.per_tenant[1].digest);
    }

    #[test]
    fn a_crashing_tenant_is_restarted_then_banned_without_blocking_others() {
        let specs = vec![healthy_spec("good"), crasher_spec("bad")];
        let opts = FleetOptions {
            restart: RestartStrategy {
                max_restarts: 2,
                window: 100,
                backoff: Backoff::new(7, 0), // no delay: probe immediately
            },
            ..Default::default()
        };
        let mut fleet = Fleet::new(specs, opts).expect("boots");
        fleet.run_requests(40);
        let s = fleet.stats();
        let good = &s.per_tenant[0];
        let bad = &s.per_tenant[1];
        assert_eq!(good.health, TenantHealth::Healthy);
        assert_eq!(good.served, 20, "the ban never cost the good tenant a tick");
        assert_eq!(bad.health, TenantHealth::Banned);
        // 2 restarts allowed; the 3rd failure inside the window bans.
        assert_eq!(bad.restarts, 2);
        assert_eq!(bad.failures, 3);
        assert!(bad.banned_sheds > 0, "post-ban requests shed, not served");
        assert_eq!(bad.served, bad.failures as u64, "every served request violated");
        assert_eq!(s.bans, 1);
        assert_eq!(s.verdict, FleetVerdict::Degraded, "bans degrade the fleet without overload");
    }

    #[test]
    fn the_circuit_breaker_sheds_then_probes_half_open() {
        let specs = vec![crasher_spec("flappy")];
        let opts = FleetOptions {
            restart: RestartStrategy {
                max_restarts: 10,
                window: 5, // short window: never two failures inside it
                backoff: Backoff::new(11, 4),
            },
            ..Default::default()
        };
        let mut fleet = Fleet::new(specs, opts).expect("boots");
        fleet.run_requests(60);
        let s = fleet.stats();
        let t = &s.per_tenant[0];
        assert!(t.restarts >= 2, "restarted repeatedly: {t:?}");
        assert!(t.breaker_sheds > 0, "the open breaker shed requests");
        assert_eq!(
            t.served,
            t.failures,
            "between restarts only half-open probes reached the process"
        );
        assert_eq!(t.requests, 60);
        assert_eq!(t.served + t.breaker_sheds + t.banned_sheds, 60);
    }

    #[test]
    fn overload_sheds_degraded_tenants_until_pressure_drops() {
        // Three tenants: one healthy, one whose every request needs a
        // supervisor recovery (pinned Degraded), one banned-bound
        // crasher. Once the crasher is banned, 2 of 3 tenants are
        // unhealthy (> 50%): the Degraded tenant's requests shed.
        let evil_host = "int dlopen(char* name);\n\
             void* dlsym(char* name);\n\
             int main(void) {\n\
               int ok = dlopen(\"evil\");\n\
               if (ok) {\n\
                 int (*f)(int) = (int(*)(int))dlsym(\"evil_fn\");\n\
                 return f(1);\n\
               }\n\
               return 77;\n\
             }";
        let popts =
            ProcessOptions { violation_policy: ViolationPolicy::Recover, ..Default::default() };
        let mut degraded = spec("degraded", evil_host, popts, RecoveryPolicy::default());
        degraded.libraries.push((
            "evil".to_string(),
            compile("evil", "float evil_fn(float x) { return x * 2.0; }"),
        ));
        let specs = vec![healthy_spec("good"), degraded, crasher_spec("bad")];
        let opts = FleetOptions {
            shed_threshold_pct: 50,
            restart: RestartStrategy {
                max_restarts: 0, // first failure bans
                window: 100,
                backoff: Backoff::new(3, 0),
            },
            ..Default::default()
        };
        let mut fleet = Fleet::new(specs, opts).expect("boots");
        fleet.run_requests(30);
        let s = fleet.stats();
        assert_eq!(s.per_tenant[0].health, TenantHealth::Healthy);
        assert_eq!(s.per_tenant[0].served, 10, "healthy tenants serve through overload");
        assert_eq!(s.per_tenant[2].health, TenantHealth::Banned);
        let deg = &s.per_tenant[1];
        assert_eq!(deg.health, TenantHealth::Degraded);
        assert!(deg.supervisor.recoveries > 0, "{deg:?}");
        assert!(deg.overload_sheds > 0, "overload shed the degraded tenant: {deg:?}");
        assert!(deg.served > 0, "it served before the fleet overloaded");
        assert_eq!(s.verdict, FleetVerdict::Shedding, "load shedding is a verdict, not a silent drop");
    }

    #[test]
    fn seeded_schedule_and_storms_replay_identically() {
        let mk = || {
            let specs = (0..4).map(|i| healthy_spec(&format!("t{i}"))).collect();
            let opts = FleetOptions {
                schedule: Schedule::Seeded(0xfeed),
                record_results: true,
                ..Default::default()
            };
            let mut fleet = Fleet::new(specs, opts).expect("boots");
            fleet.arm_storm(Storm { seed: 42, kind: StormKind::Random { faults: 3 } });
            fleet.run_requests(100);
            fleet
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.stats(), b.stats());
        for i in 0..a.len() {
            assert_eq!(a.results(i), b.results(i), "tenant {i} replays byte-identically");
        }
        // The storm decorrelates tenants: not all plans are equal.
        let storm = Storm { seed: 42, kind: StormKind::Random { faults: 3 } };
        assert_ne!(tenant_plan(&storm, 0), tenant_plan(&storm, 1));
        // And the all-points shape covers every runtime point.
        let all = tenant_plan(&Storm { seed: 7, kind: StormKind::AllPoints }, 0);
        assert_eq!(all.faults.len(), RUNTIME_POINTS);
    }

    #[test]
    fn stats_serialize_to_json() {
        // FleetStats is a JSON artifact (`fleet_ab` emits it); make sure
        // every nested piece — tenant vec, health enum, supervisor
        // stats — drives the serializer without loss.
        let specs = vec![healthy_spec("t0")];
        let mut fleet = Fleet::new(specs, FleetOptions::default()).expect("boots");
        fleet.run_requests(3);
        let s = fleet.stats();
        let json = serde_json::to_string(&s).expect("serializes");
        assert!(json.contains("\"tenants\":1"), "{json}");
        assert!(json.contains("\"per_tenant\":[{"), "{json}");
        assert!(json.contains("\"health\":\"Healthy\""), "{json}");
        assert!(json.contains("\"verdict\":\"Healthy\""), "{json}");
        assert!(json.contains("\"supervisor\":{\"runs\":3"), "{json}");
    }
}
