//! The independent MCFI module verifier (paper §7).
//!
//! "We have also implemented an independent verifier … that performs
//! modular verification of MCFI modules. The verifier takes an MCFI
//! module, disassembles the module, and checks whether indirect branches
//! are instrumented as required, memory writes stay in the sandbox (so
//! that the tables are protected), and no-ops are inserted to make
//! indirect-branch targets aligned." The verifier removes the rewriter
//! from the trusted computing base: a buggy or malicious compiler cannot
//! slip uninstrumented branches or unsandboxed writes past it.
//!
//! The auxiliary type information makes *complete* disassembly possible —
//! [`verify`] decodes every instruction byte of the module (jump tables
//! are data and are checked structurally instead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;

use mcfi_machine::{decode, Cond, Inst, Reg, SANDBOX_MASK, TARGET_ALIGN};
use mcfi_module::Module;

/// A single verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// The code could not be fully disassembled.
    Undecodable {
        /// Offset of the failure.
        offset: usize,
        /// Decoder message.
        message: String,
    },
    /// A raw `ret` appears in instrumented code.
    RawReturn {
        /// Offset.
        offset: usize,
    },
    /// An indirect branch is not part of a recorded check sequence.
    UncheckedIndirectBranch {
        /// Offset.
        offset: usize,
    },
    /// A recorded check sequence does not match the required instruction
    /// pattern (paper Fig. 4).
    MalformedCheck {
        /// Offset of the `BaryLoad`.
        offset: usize,
        /// What was wrong.
        message: String,
    },
    /// A store's address register is not masked into the sandbox
    /// immediately before the write (and is not frame-relative).
    UnsandboxedWrite {
        /// Offset of the store.
        offset: usize,
    },
    /// A function entry, return site, or setjmp landing is misaligned.
    MisalignedTarget {
        /// The target offset.
        offset: usize,
        /// Which kind of target.
        what: &'static str,
    },
    /// A jump-table entry points outside its owning function.
    JumpTableEscape {
        /// Table offset.
        table: usize,
        /// The offending entry.
        entry: usize,
    },
    /// Recorded metadata points outside the module's code image — the
    /// kind of inconsistency only a corrupt or hostile image exhibits.
    OutOfBounds {
        /// The offending offset.
        offset: usize,
        /// Which kind of metadata.
        what: &'static str,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Undecodable { offset, message } => {
                write!(f, "undecodable code at {offset:#x}: {message}")
            }
            Violation::RawReturn { offset } => write!(f, "raw ret at {offset:#x}"),
            Violation::UncheckedIndirectBranch { offset } => {
                write!(f, "unchecked indirect branch at {offset:#x}")
            }
            Violation::MalformedCheck { offset, message } => {
                write!(f, "malformed check at {offset:#x}: {message}")
            }
            Violation::UnsandboxedWrite { offset } => {
                write!(f, "unsandboxed memory write at {offset:#x}")
            }
            Violation::MisalignedTarget { offset, what } => {
                write!(f, "misaligned {what} at {offset:#x}")
            }
            Violation::JumpTableEscape { table, entry } => {
                write!(f, "jump table at {table:#x} escapes its function via {entry:#x}")
            }
            Violation::OutOfBounds { offset, what } => {
                write!(f, "{what} at {offset:#x} is outside the code image")
            }
        }
    }
}

/// The verification report.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All violations found (empty = the module verifies).
    pub violations: Vec<Violation>,
    /// Instructions disassembled.
    pub instructions: usize,
    /// Check sequences validated.
    pub checks: usize,
    /// Stores validated.
    pub stores: usize,
}

impl Report {
    /// Whether the module passed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verifies an MCFI module.
///
/// Checks performed:
/// 1. the entire code image (minus jump-table data) disassembles;
/// 2. no raw `Ret` instructions remain;
/// 3. every `CallReg`/`JmpReg` is the branch of a recorded check sequence
///    whose instructions match the Fig. 4 pattern (`BaryLoad %rdi`;
///    `TaryLoad %rsi, (%rcx)`; `Cmp %rdi, %rsi`; `Jcc ne`; branch via
///    `%rcx`; with the `TestImm`/`Cmp16` slow path present);
/// 4. every `Store`/`Store8` either goes through the frame/stack
///    registers or its base register is masked by
///    `AndImm reg, SANDBOX_MASK` that dominates the store in the same
///    straight-line run, with no intervening redefinition of the base
///    (multi-word writes like the setjmp buffer save share one mask);
/// 5. function entries, return sites, and setjmp landings are 4-byte
///    aligned;
/// 6. jump-table entries stay within their owning function.
pub fn verify(module: &Module) -> Report {
    let mut report = Report::default();

    // Jump tables are read-only data inside the code region; skip them
    // during linear disassembly.
    // Saturating: a hostile table span must clamp, not overflow.
    let table_ranges: Vec<(usize, usize)> = module
        .aux
        .jump_tables
        .iter()
        .map(|t| {
            (t.table_offset, t.table_offset.saturating_add(t.entries.len().saturating_mul(8)))
        })
        .collect();
    let in_table = |off: usize| table_ranges.iter().any(|(s, e)| off >= *s && off < *e);

    let branch_offsets: BTreeSet<usize> =
        module.aux.indirect_branches.iter().map(|b| b.branch_offset).collect();

    // Pass 1: linear disassembly with local pattern checks.
    let mut insts: Vec<(usize, Inst)> = Vec::new();
    let mut off = 0;
    while off < module.code.len() {
        if in_table(off) {
            off += 1;
            continue;
        }
        match decode(&module.code, off) {
            Ok((inst, len)) => {
                insts.push((off, inst));
                off += len;
            }
            Err(e) => {
                report
                    .violations
                    .push(Violation::Undecodable { offset: off, message: e.to_string() });
                off += 1;
            }
        }
    }
    report.instructions = insts.len();

    for (i, (off, inst)) in insts.iter().enumerate() {
        match inst {
            Inst::Ret => report.violations.push(Violation::RawReturn { offset: *off }),
            Inst::CallReg { .. } | Inst::JmpReg { .. }
                if !branch_offsets.contains(off) => {
                    report
                        .violations
                        .push(Violation::UncheckedIndirectBranch { offset: *off });
                }
            Inst::Store { base, .. } | Inst::Store8 { base, .. } => {
                report.stores += 1;
                let frame_relative = matches!(base, Reg::Rsp | Reg::Rbp);
                if !frame_relative && !store_is_masked(&insts, i, *base) {
                    report.violations.push(Violation::UnsandboxedWrite { offset: *off });
                }
            }
            _ => {}
        }
    }

    // Pass 2: each recorded check sequence matches the Fig. 4 pattern.
    let index_of: std::collections::HashMap<usize, usize> =
        insts.iter().enumerate().map(|(i, (o, _))| (*o, i)).collect();
    for b in &module.aux.indirect_branches {
        report.checks += 1;
        let Some(&start) = index_of.get(&b.check_offset) else {
            report.violations.push(Violation::MalformedCheck {
                offset: b.check_offset,
                message: "check offset is not an instruction boundary".into(),
            });
            continue;
        };
        if let Err(message) = check_sequence(&insts, start, b.branch_offset) {
            report
                .violations
                .push(Violation::MalformedCheck { offset: b.check_offset, message });
        }
    }

    // Pass 3: alignment and bounds of every possible Tary target.
    for (name, f) in &module.functions {
        if f.size == 0 {
            continue; // declaration: no trusted offset
        }
        let _ = name;
        if !(f.offset as u64).is_multiple_of(TARGET_ALIGN) {
            report
                .violations
                .push(Violation::MisalignedTarget { offset: f.offset, what: "function entry" });
        }
        match f.offset.checked_add(f.size) {
            Some(end) if end <= module.code.len() => {}
            _ => report
                .violations
                .push(Violation::OutOfBounds { offset: f.offset, what: "function entry" }),
        }
    }
    for s in &module.aux.return_sites {
        if !(s.offset as u64).is_multiple_of(TARGET_ALIGN) {
            let what = match s.callee {
                mcfi_module::CalleeKind::SetJmp => "setjmp landing",
                _ => "return site",
            };
            report.violations.push(Violation::MisalignedTarget { offset: s.offset, what });
        }
        if s.offset > module.code.len() {
            report
                .violations
                .push(Violation::OutOfBounds { offset: s.offset, what: "return site" });
        }
    }

    // Pass 4: jump tables stay inside their owning functions.
    for t in &module.aux.jump_tables {
        if let Some(f) = module.functions.get(&t.function) {
            let end = f.offset.saturating_add(f.size);
            for e in &t.entries {
                if *e < f.offset || *e >= end {
                    report
                        .violations
                        .push(Violation::JumpTableEscape { table: t.table_offset, entry: *e });
                }
            }
        }
    }

    report
}

/// Whether the store at instruction index `i` writes through a base
/// register masked into the sandbox. The mask must dominate the store
/// with no intervening instruction that could change the base: only
/// other stores (which write memory, not registers) may sit between the
/// `AndImm` and this store — the pattern of multi-word writes such as
/// the setjmp buffer save.
fn store_is_masked(insts: &[(usize, Inst)], i: usize, base: Reg) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let inst = &insts[j].1;
        if let Inst::AndImm { dst, imm } = inst {
            if *dst == base && *imm == SANDBOX_MASK {
                return true;
            }
        }
        // Control flow invalidates the straight-line dominance argument;
        // so does any instruction that could redefine the base register.
        let is_control = matches!(
            inst,
            Inst::Jmp { .. }
                | Inst::Jcc { .. }
                | Inst::Call { .. }
                | Inst::CallReg { .. }
                | Inst::JmpReg { .. }
                | Inst::JmpTable { .. }
                | Inst::Ret
                | Inst::Syscall
                | Inst::Hlt
        );
        if is_control || writes_reg(inst, base) {
            return false;
        }
    }
    false
}

/// Whether `inst` writes register `r`.
fn writes_reg(inst: &Inst, r: Reg) -> bool {
    match inst {
        Inst::MovImm { dst, .. }
        | Inst::MovReg { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::Load8 { dst, .. }
        | Inst::Lea { dst, .. }
        | Inst::Alu { dst, .. }
        | Inst::AddImm { dst, .. }
        | Inst::AndImm { dst, .. }
        | Inst::SetCc { dst, .. }
        | Inst::TaryLoad { dst, .. }
        | Inst::BaryLoad { dst, .. }
        | Inst::FAlu { dst, .. }
        | Inst::CvtIF { dst, .. }
        | Inst::CvtFI { dst, .. } => *dst == r,
        Inst::Pop { reg } | Inst::Trunc32 { reg } => *reg == r,
        Inst::Push { .. }
        | Inst::Store { .. }
        | Inst::Store8 { .. }
        | Inst::Cmp { .. }
        | Inst::Cmp16 { .. }
        | Inst::CmpImm { .. }
        | Inst::TestImm { .. }
        | Inst::FCmp { .. }
        | Inst::Nop => false,
        // Control-flow instructions are handled by the caller.
        _ => true,
    }
}

/// Validates one check sequence starting at instruction index `start`
/// (the `BaryLoad`), whose transfer is recorded at `branch_offset`.
fn check_sequence(
    insts: &[(usize, Inst)],
    start: usize,
    branch_offset: usize,
) -> Result<(), String> {
    let get = |i: usize| -> Result<&Inst, String> {
        insts.get(i).map(|(_, inst)| inst).ok_or_else(|| "sequence truncated".to_string())
    };
    // BaryLoad %rdi, <slot>
    match get(start)? {
        Inst::BaryLoad { dst: Reg::Rdi, .. } => {}
        other => return Err(format!("expected BaryLoad %rdi, found {other}")),
    }
    // TaryLoad %rsi, (%rcx)
    match get(start + 1)? {
        Inst::TaryLoad { dst: Reg::Rsi, addr: Reg::Rcx } => {}
        other => return Err(format!("expected TaryLoad %rsi,(%rcx), found {other}")),
    }
    // Cmp %rdi, %rsi
    match get(start + 2)? {
        Inst::Cmp { a: Reg::Rdi, b: Reg::Rsi } => {}
        other => return Err(format!("expected Cmp %rdi,%rsi, found {other}")),
    }
    // Jcc ne <slow path>
    match get(start + 3)? {
        Inst::Jcc { cc: Cond::Ne, .. } => {}
        other => return Err(format!("expected jne, found {other}")),
    }
    // The transfer: CallReg/JmpReg via %rcx at the recorded offset,
    // possibly preceded by alignment Nops.
    let mut i = start + 4;
    loop {
        let (off, inst) = insts
            .get(i)
            .ok_or_else(|| "sequence truncated before branch".to_string())?;
        match inst {
            Inst::Nop => {
                i += 1;
                continue;
            }
            Inst::CallReg { reg: Reg::Rcx } | Inst::JmpReg { reg: Reg::Rcx } => {
                if *off != branch_offset {
                    return Err(format!(
                        "branch at {off:#x} does not match recorded offset {branch_offset:#x}"
                    ));
                }
                break;
            }
            other => return Err(format!("expected checked branch via %rcx, found {other}")),
        }
    }
    // Slow path must contain the validity test and the version compare
    // within a small window after the branch.
    let window: Vec<&Inst> = (i + 1..(i + 8).min(insts.len()))
        .filter_map(|j| insts.get(j).map(|(_, inst)| inst))
        .collect();
    let has_validity = window
        .iter()
        .any(|inst| matches!(inst, Inst::TestImm { a: Reg::Rsi, imm: 1 }));
    let has_version = window
        .iter()
        .any(|inst| matches!(inst, Inst::Cmp16 { a: Reg::Rdi, b: Reg::Rsi }));
    let has_halt = window.iter().any(|inst| matches!(inst, Inst::Hlt));
    if !has_validity {
        return Err("slow path lacks the validity test (testb $1, %sil)".into());
    }
    if !has_version {
        return Err("slow path lacks the version compare (cmpw %di, %si)".into());
    }
    if !has_halt {
        return Err("slow path lacks the hlt".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfi_codegen::{compile_source, CodegenOptions, Policy};
    use mcfi_machine::{encode, encode_into};

    fn build(src: &str) -> Module {
        compile_source("t", src, &CodegenOptions::default()).unwrap_or_else(|e| panic!("{e}"))
    }

    const DEMO: &str = "int id(int x) { return x; }\n\
                        int apply(int (*f)(int), int x) { int r = f(x); return r; }\n\
                        int main(void) { int r = apply(&id, 5); return r; }";

    #[test]
    fn instrumented_modules_verify() {
        let m = build(DEMO);
        let r = verify(&m);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.checks >= 3);
        assert!(r.instructions > 10);
    }

    #[test]
    fn switch_modules_verify() {
        let m = build(
            "int f(int x) { switch (x) { case 0: return 1; case 1: return 2; case 2: return 3; \
             case 3: return 4; default: return 0; } return 0; }",
        );
        let r = verify(&m);
        assert!(r.ok(), "violations: {:?}", r.violations);
    }

    #[test]
    fn uninstrumented_module_fails() {
        let m = compile_source(
            "t",
            DEMO,
            &CodegenOptions { policy: Policy::NoCfi, tail_calls: true },
        )
        .unwrap();
        let r = verify(&m);
        assert!(!r.ok());
        assert!(r.violations.iter().any(|v| matches!(v, Violation::RawReturn { .. })));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UncheckedIndirectBranch { .. })));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UnsandboxedWrite { .. })));
    }

    #[test]
    fn stripping_the_mask_is_caught() {
        // Take a valid module and overwrite an AndImm with Nops: the
        // following store becomes unsandboxed.
        let mut m = build("void f(int* p) { *p = 7; }");
        let insts = mcfi_machine::decode_all(&m.code).unwrap();
        let (mask_off, mask_len) = insts
            .iter()
            .zip(insts.iter().skip(1))
            .find_map(|((o, i), _)| match i {
                Inst::AndImm { .. } => Some((*o, encode(&[*i]).len())),
                _ => None,
            })
            .expect("masked store present");
        let mut nops = Vec::new();
        for _ in 0..mask_len {
            encode_into(&Inst::Nop, &mut nops);
        }
        m.code[mask_off..mask_off + mask_len].copy_from_slice(&nops);
        let r = verify(&m);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UnsandboxedWrite { .. })));
    }

    #[test]
    fn corrupted_check_sequence_is_caught() {
        // Replace the TaryLoad of the first check with Nops.
        let mut m = build("int f(int x) { return x; }");
        let b = m.aux.indirect_branches[0].clone();
        let (inst, len) = decode(&m.code, b.check_offset).unwrap();
        assert!(matches!(inst, Inst::BaryLoad { .. }));
        let tary_off = b.check_offset + len;
        let (tl, tl_len) = decode(&m.code, tary_off).unwrap();
        assert!(matches!(tl, Inst::TaryLoad { .. }));
        for i in 0..tl_len {
            m.code[tary_off + i] = 0x22; // Nop
        }
        let r = verify(&m);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MalformedCheck { .. })));
    }

    #[test]
    fn misreported_branch_offset_is_caught() {
        let mut m = build("int f(int x) { return x; }");
        m.aux.indirect_branches[0].branch_offset += 2;
        let r = verify(&m);
        assert!(!r.ok());
    }

    #[test]
    fn misaligned_function_entry_is_caught() {
        let mut m = build("int f(int x) { return x; }");
        let sym = m.functions.get_mut("f").unwrap();
        sym.offset += 1; // misreport
        let r = verify(&m);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MisalignedTarget { what: "function entry", .. })));
    }

    #[test]
    fn escaping_jump_table_is_caught() {
        let mut m = build(
            "int f(int x) { switch (x) { case 0: return 1; case 1: return 2; case 2: return 3; \
             case 3: return 4; default: return 0; } return 0; }\nint g(void) { return 7; }",
        );
        // Redirect a table entry into g.
        let g_off = m.functions["g"].offset;
        m.aux.jump_tables[0].entries[0] = g_off;
        let r = verify(&m);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::JumpTableEscape { .. })));
    }

    #[test]
    fn undecodable_bytes_are_reported() {
        let mut m = build("int f(int x) { return x; }");
        m.code.push(0xff);
        let r = verify(&m);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Undecodable { .. })));
    }

    #[test]
    fn verifier_accepts_the_whole_stdlib() {
        let m = compile_source(
            "libms",
            mcfi_runtime::stdlib::LIBMS_SRC,
            &CodegenOptions::default(),
        )
        .unwrap();
        let r = verify(&m);
        assert!(r.ok(), "violations: {:?}", r.violations);
    }
}
