//! Self-healing supervision for an MCFI process.
//!
//! The paper's runtime (§7) trusts the updater and halts the guest on any
//! CFI violation. This crate adds the layer a production deployment wraps
//! around that runtime: a [`Supervisor`] drives a
//! [`Process`](mcfi_runtime::Process) under a declarative
//! [`RecoveryPolicy`] and turns three classes of partial failure into
//! forward progress instead of a dead process:
//!
//! * **Checkpoint/restore** — the supervisor takes a baseline checkpoint
//!   before every run (plus periodic in-run checkpoints when
//!   [`RecoveryPolicy::checkpoint_interval`] is set) and rolls the process
//!   back to the newest *safe* checkpoint after a violation. Restores
//!   verify a content digest first, so a corrupted checkpoint is skipped,
//!   never resumed from.
//! * **Module quarantine with backoff** — a library whose `dlopen` keeps
//!   failing verification backs off exponentially and is eventually
//!   banned; a module implicated in a CFI violation is banned outright.
//!   The guest simply sees `dlopen` fail, exactly like a missing library.
//! * **Updater watchdog** — with a lease installed on the tables' update
//!   lock, an updater that dies mid-transaction leaves an expired
//!   deadline behind; the watchdog detects it and heals the tables with
//!   the repair pass, and the supervisor re-runs the stalled guest.
//!
//! Recovery is budgeted: after [`RecoveryPolicy::violation_retries`]
//! recoveries the supervisor escalates the process from
//! [`ViolationPolicy::Recover`] to `Enforce` and reports the violation,
//! exactly as an unsupervised run would have.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::Ordering;

use mcfi_runtime::{
    Checkpoint, LoadError, Outcome, Process, QuarantineConfig, RestoreError, RunResult,
    ViolationPolicy,
};
use mcfi_tables::WatchdogVerdict;
use serde::Serialize;

pub use mcfi_chaos::Backoff;

/// Why a supervised run could not produce a [`RunResult`].
#[derive(Clone, PartialEq, Debug)]
pub enum SupervisorError {
    /// The entry symbol did not resolve to an exported function of a
    /// loaded module (the only way [`Process::run`] itself fails).
    Load(LoadError),
    /// The updater is *wedged*: its lease expired but it still holds the
    /// update lock, so the watchdog cannot repair the tables safely and
    /// the guest's check transactions can never commit. Unlike a crashed
    /// updater (healed and re-run transparently) this is a live external
    /// actor — only the operator can resolve it, so the supervisor
    /// surfaces it instead of burning the recovery budget on re-runs
    /// that are guaranteed to stall again.
    Wedged {
        /// The expired lease deadline, in simulated cycles.
        lease_deadline: u64,
        /// The watchdog's clock when the wedge was detected.
        now: u64,
        /// Steps the stalled run burned before hitting its ceiling.
        steps: u64,
    },
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::Load(e) => write!(f, "{e}"),
            SupervisorError::Wedged { lease_deadline, now, steps } => write!(
                f,
                "updater wedged: lease expired at cycle {lease_deadline} (clock {now}) \
                 with the update lock still held; the guest stalled after {steps} steps"
            ),
        }
    }
}

impl std::error::Error for SupervisorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SupervisorError::Load(e) => Some(e),
            SupervisorError::Wedged { .. } => None,
        }
    }
}

impl From<LoadError> for SupervisorError {
    fn from(e: LoadError) -> Self {
        SupervisorError::Load(e)
    }
}

/// Declarative recovery policy for a supervised process.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Steps between automatic in-run checkpoints (0 = baseline
    /// between-run checkpoints only).
    pub checkpoint_interval: u64,
    /// Recoveries (violation rollbacks or watchdog re-runs) before the
    /// supervisor escalates to [`ViolationPolicy::Enforce`] and gives up.
    pub violation_retries: u32,
    /// Total restore attempts per recovery before falling back to a
    /// plain re-run. Injected restore refusals are transient (the next
    /// attempt may succeed); corrupt checkpoints are dropped for good.
    pub max_restore_attempts: u32,
    /// Quarantine policy installed on the process (failures before a
    /// ban, backoff base, jitter seed).
    pub quarantine: QuarantineConfig,
    /// Updater-lease duration in simulated cycles (0 = no lease, the
    /// watchdog falls back to direct repair).
    pub lease_duration: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_interval: 0,
            violation_retries: 3,
            max_restore_attempts: 8,
            quarantine: QuarantineConfig::default(),
            lease_duration: 0,
        }
    }
}

/// What the supervisor did across [`Supervisor::run`] calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct SupervisorStats {
    /// Process runs driven (re-runs included).
    pub runs: u64,
    /// Recoveries performed (violation rollbacks + stall re-runs).
    pub recoveries: u64,
    /// Restore attempts that failed (injected refusal or corrupt
    /// checkpoint) before a fallback succeeded.
    pub failed_restores: u64,
    /// Abandoned update transactions healed through the lease watchdog.
    pub watchdog_heals: u64,
    /// Abandoned update transactions healed by direct repair (no lease
    /// installed, or the lease had not expired yet).
    pub direct_repairs: u64,
    /// Whether the supervisor escalated `Recover` to `Enforce`.
    pub escalated: bool,
}

/// Drives a [`Process`] under a [`RecoveryPolicy`] (see the crate docs).
pub struct Supervisor {
    process: Process,
    policy: RecoveryPolicy,
    stats: SupervisorStats,
}

impl Supervisor {
    /// Wraps `process`, installing the policy's quarantine config,
    /// checkpoint cadence, and (if configured) the updater lease.
    pub fn new(mut process: Process, policy: RecoveryPolicy) -> Self {
        process.set_quarantine(policy.quarantine);
        process.set_checkpoint_interval(policy.checkpoint_interval);
        if policy.lease_duration > 0 {
            process.enable_update_lease(policy.lease_duration);
        }
        Supervisor { process, policy, stats: SupervisorStats::default() }
    }

    /// The supervised process.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Mutable access to the supervised process (registering libraries,
    /// arming chaos plans).
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.process
    }

    /// What the supervisor has done so far.
    pub fn stats(&self) -> &SupervisorStats {
        &self.stats
    }

    /// Unwraps the supervised process.
    pub fn into_process(self) -> Process {
        self.process
    }

    /// Runs `entry` to completion, recovering along the way.
    ///
    /// A baseline checkpoint is taken first. Then, until the recovery
    /// budget runs out:
    ///
    /// * a run ending in a CFI violation (under
    ///   [`ViolationPolicy::Recover`]) quarantines the implicated module
    ///   — the one owning the branch's illegal *target* when the
    ///   violation log can name it, else the one owning the faulting
    ///   branch — restores the newest checkpoint that does not contain
    ///   it, and re-runs;
    /// * a run that stalls at the step limit against abandoned tables is
    ///   healed (watchdog lease repair, or direct repair without a
    ///   lease) and re-run.
    ///
    /// Anything else — normal exits, faults, honest step-limit ends — is
    /// returned as-is. Once the budget is spent the supervisor escalates
    /// the process to `Enforce` and returns the violating result.
    ///
    /// # Errors
    ///
    /// [`SupervisorError::Load`] if `entry` is not an exported function
    /// of a loaded module; [`SupervisorError::Wedged`] if a run stalls
    /// at the step limit against a wedged updater — lease expired, lock
    /// still held — which no amount of re-running can heal.
    pub fn run(&mut self, entry: &str) -> Result<RunResult, SupervisorError> {
        self.process.checkpoint_now();
        let mut budget = self.policy.violation_retries;
        loop {
            let r = self.process.run(entry)?;
            self.stats.runs += 1;
            match r.outcome {
                Outcome::CfiViolation { pc }
                    if self.process.violation_policy() == ViolationPolicy::Recover =>
                {
                    if budget == 0 {
                        self.process.set_violation_policy(ViolationPolicy::Enforce);
                        self.stats.escalated = true;
                        return Ok(r);
                    }
                    budget -= 1;
                    self.stats.recoveries += 1;
                    let culprit = self.culprit_of(pc);
                    if let Some(name) = &culprit {
                        self.process
                            .quarantine_module(name, &format!("cfi violation at pc {pc:#x}"));
                    }
                    // A failed restore is not fatal: a plain re-run from
                    // the entry point with the quarantine active is the
                    // moral equivalent of a process restart.
                    self.restore_best(culprit.as_deref());
                }
                Outcome::StepLimit if self.process.tables().has_abandoned() => {
                    if budget == 0 {
                        return Ok(r);
                    }
                    budget -= 1;
                    self.stats.recoveries += 1;
                    self.heal();
                }
                // A stall with the tables *not* abandoned but a lease
                // stamp left behind: poll the watchdog. `Wedged` (lock
                // still held past the deadline) is unhealable from here
                // — surface it instead of returning a bare step-limit
                // result the caller would misread as a slow guest.
                Outcome::StepLimit
                    if self.policy.lease_duration > 0
                        && self.process.watchdog_poll() == WatchdogVerdict::Wedged =>
                {
                    let tables = self.process.tables();
                    return Err(SupervisorError::Wedged {
                        lease_deadline: tables.lease_deadline(),
                        now: self.process.cycle_counter().load(Ordering::Relaxed),
                        steps: r.steps,
                    });
                }
                _ => return Ok(r),
            }
        }
    }

    /// The module to quarantine for a violation halted at `pc`: prefer
    /// the module owning the illegal *target* recorded in the violation
    /// log (the code the hijacked branch tried to reach), falling back
    /// to the module owning the faulting branch itself.
    fn culprit_of(&self, pc: u64) -> Option<String> {
        let by_target = self
            .process
            .violation_log()
            .records()
            .last()
            .and_then(|rec| self.process.module_at(rec.target));
        by_target.or_else(|| self.process.module_at(pc)).map(str::to_string)
    }

    /// Restores the newest checkpoint that does not contain `culprit`,
    /// skipping corrupt checkpoints for good and retrying transient
    /// (injected) refusals up to the attempt budget. Returns whether any
    /// restore succeeded.
    fn restore_best(&mut self, culprit: Option<&str>) -> bool {
        let mut candidates: Vec<Checkpoint> = self
            .process
            .checkpoints()
            .iter()
            .rev()
            .filter(|cp| {
                culprit.is_none_or(|name| !cp.module_names().iter().any(|n| n == name))
            })
            .cloned()
            .collect();
        let mut attempts = 0;
        while !candidates.is_empty() && attempts < self.policy.max_restore_attempts {
            let mut i = 0;
            while i < candidates.len() && attempts < self.policy.max_restore_attempts {
                attempts += 1;
                match self.process.restore(&candidates[i]) {
                    Ok(()) => return true,
                    Err(RestoreError::Corrupt { .. }) => {
                        self.stats.failed_restores += 1;
                        candidates.remove(i);
                    }
                    Err(RestoreError::Injected(_)) => {
                        self.stats.failed_restores += 1;
                        i += 1;
                    }
                }
            }
        }
        false
    }

    /// Heals abandoned tables: through the lease watchdog when a lease
    /// is installed and expired, by direct repair otherwise.
    fn heal(&mut self) {
        if self.policy.lease_duration > 0 {
            if let WatchdogVerdict::Healed { .. } = self.process.watchdog_poll() {
                self.stats.watchdog_heals += 1;
                return;
            }
        }
        if self.process.tables().repair_abandoned() {
            self.stats.direct_repairs += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfi_chaos::{ChaosInjector, FaultPlan, FaultPoint};
    use mcfi_codegen::{compile_source, CodegenOptions};
    use mcfi_runtime::{stdlib, synth, ProcessOptions};

    fn compile(name: &str, src: &str) -> mcfi_module::Module {
        compile_source(name, src, &CodegenOptions::default()).unwrap_or_else(|e| panic!("{e}"))
    }

    fn boot(src: &str, popts: ProcessOptions) -> Process {
        let mut p = Process::new(popts).expect("valid layout");
        let stubs = synth::syscall_module();
        let libms = compile("libms", stdlib::LIBMS_SRC);
        let start = compile("start", stdlib::START_SRC);
        let prog = compile("prog", src);
        p.load_all(vec![stubs, libms, start, prog]).unwrap_or_else(|e| panic!("{e}"));
        p
    }

    const EVIL_HOST: &str = "int dlopen(char* name);\n\
         void* dlsym(char* name);\n\
         int main(void) {\n\
           int ok = dlopen(\"evil\");\n\
           if (ok) {\n\
             int (*f)(int) = (int(*)(int))dlsym(\"evil_fn\");\n\
             return f(1);\n\
           }\n\
           return 77;\n\
         }";

    fn evil_lib() -> mcfi_module::Module {
        compile("evil", "float evil_fn(float x) { return x * 2.0; }")
    }

    #[test]
    fn violation_in_a_dlopened_module_is_recovered_by_quarantine() {
        let popts = ProcessOptions {
            violation_policy: ViolationPolicy::Recover,
            ..Default::default()
        };
        let mut p = boot(EVIL_HOST, popts);
        p.register_library("evil", evil_lib());
        let mut sup = Supervisor::new(p, RecoveryPolicy::default());
        let r = sup.run("__start").expect("entry resolves");
        // First run: dlopen succeeds, the wrongly-typed call through the
        // evil module violates; the supervisor quarantines `evil`,
        // restores the pre-load baseline, and the re-run's dlopen is
        // denied — the guest takes its failure path.
        assert_eq!(r.outcome, Outcome::Exit { code: 77 }, "stdout: {}", r.stdout);
        assert_eq!(sup.stats().recoveries, 1);
        assert_eq!(sup.stats().runs, 2);
        assert!(!sup.stats().escalated);
        assert!(r.restores >= 1, "the rollback is visible in the run result");
        assert!(r.quarantines >= 1);
        assert!(r.checkpoints >= 1);
        let report = sup.process().quarantine_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].library, "evil");
        assert!(report[0].banned);
        assert!(report[0].last_error.contains("cfi violation"));
    }

    #[test]
    fn unrecoverable_violation_escalates_to_enforce_after_the_budget() {
        // The violating branch lives in the main program: every
        // checkpoint contains it, so recovery can only re-run — and the
        // violation recurs until the budget is spent.
        let src = "float fsq(float x) { return x * x; }\n\
             int main(void) {\n\
               void* raw = (void*)&fsq;\n\
               int (*f)(int) = (int(*)(int))raw;\n\
               return f(3);\n\
             }";
        let popts = ProcessOptions {
            violation_policy: ViolationPolicy::Recover,
            ..Default::default()
        };
        let p = boot(src, popts);
        let policy = RecoveryPolicy { violation_retries: 2, ..Default::default() };
        let mut sup = Supervisor::new(p, policy);
        let r = sup.run("__start").expect("entry resolves");
        assert!(matches!(r.outcome, Outcome::CfiViolation { .. }), "{:?}", r.outcome);
        assert_eq!(sup.stats().recoveries, 2);
        assert_eq!(sup.stats().runs, 3, "initial run + one per retry");
        assert!(sup.stats().escalated);
        assert_eq!(sup.process().violation_policy(), ViolationPolicy::Enforce);
    }

    #[test]
    fn watchdog_heals_a_crashed_updater_and_the_guest_reruns_to_the_same_result() {
        const SPIN: &str = "int w(int x) { return x * 2 + 1; }\n\
             int main(void) {\n\
               int (*f)(int) = &w;\n\
               int acc = 0; int i = 0;\n\
               while (i < 3000) { acc = acc + f(i) % 11; i = i + 1; }\n\
               return acc % 100;\n\
             }";
        let popts = ProcessOptions {
            max_steps: 400_000,
            violation_policy: ViolationPolicy::Recover,
            ..Default::default()
        };
        let policy = RecoveryPolicy { lease_duration: 5_000, ..Default::default() };
        let mut sup = Supervisor::new(boot(SPIN, popts), policy);
        let baseline = sup.run("__start").expect("runs");
        let Outcome::Exit { code } = baseline.outcome else {
            panic!("{:?}", baseline.outcome)
        };

        // An updater crashes between the Tary and Bary phases. The lease
        // it stamped at lock acquire stays behind as the death notice.
        let tables = sup.process().tables();
        tables.arm_chaos(ChaosInjector::arm(
            FaultPlan::new().with(FaultPoint::UpdaterCrash, 1, 0),
        ));
        assert!(!tables.bump_version().completed);
        assert!(tables.has_abandoned());
        tables.disarm_chaos();

        // The supervised re-run stalls at the step limit (checks retry
        // on the version skew, never mis-decide), the watchdog sees the
        // expired lease, heals the tables, and the re-run completes with
        // the exact same program result.
        let healed = sup.run("__start").expect("runs");
        assert_eq!(healed.outcome, Outcome::Exit { code });
        assert_eq!(sup.stats().watchdog_heals, 1);
        assert_eq!(sup.stats().direct_repairs, 0, "the lease path did the healing");
        assert!(healed.tx_lease_repairs >= 1, "the repair is visible in the run result");
        assert!(!tables.has_abandoned());
    }

    #[test]
    fn repeated_dlopen_failures_back_off_and_eventually_ban() {
        // The guest retries dlopen in a loop; the verifier (via fault
        // injection) rejects the library every time. With a quarantine
        // budget of 2 the third attempt is never even made: the library
        // is banned and every later dlopen is denied without a load.
        let host = "int dlopen(char* name);\n\
             int main(void) {\n\
               int wins = 0; int i = 0;\n\
               while (i < 6) { wins = wins + dlopen(\"flaky\"); i = i + 1; }\n\
               return wins;\n\
             }";
        let popts = ProcessOptions {
            violation_policy: ViolationPolicy::Recover,
            ..Default::default()
        };
        let mut p = boot(host, popts);
        p.register_library("flaky", compile("flaky", "int flaky_fn(int v) { return v; }"));
        // Reject every load attempt this run could possibly make.
        p.arm_chaos(
            (1u64..=6).fold(FaultPlan::new(), |pl, i| pl.with(FaultPoint::VerifierReject, i, 0)),
        );
        let policy = RecoveryPolicy {
            quarantine: QuarantineConfig { max_failures: 2, base_backoff: 0, seed: 7 },
            ..Default::default()
        };
        let mut sup = Supervisor::new(p, policy);
        let r = sup.run("__start").expect("runs");
        assert_eq!(r.outcome, Outcome::Exit { code: 0 }, "stdout: {}", r.stdout);
        assert_eq!(r.load_rollbacks, 2, "only the pre-ban attempts reached the loader");
        assert_eq!(r.quarantines, 1);
        let report = sup.process().quarantine_report();
        assert_eq!(report.len(), 1);
        assert!(report[0].banned);
        assert_eq!(report[0].failures, 2);
        assert!(sup.process().quarantine_denials() >= 4, "later dlopens were denied outright");
    }

    #[test]
    fn backoff_delays_the_retry_but_allows_it_later() {
        // One rejection, then a spin long enough to outlive the backoff
        // window: the retry after the wait succeeds.
        let host = "int dlopen(char* name);\n\
             int main(void) {\n\
               int first = dlopen(\"lib\");\n\
               int early = dlopen(\"lib\");\n\
               int i = 0;\n\
               while (i < 2000) { i = i + 1; }\n\
               int late = dlopen(\"lib\");\n\
               return first * 100 + early * 10 + late;\n\
             }";
        let popts = ProcessOptions {
            violation_policy: ViolationPolicy::Recover,
            ..Default::default()
        };
        let mut p = boot(host, popts);
        p.register_library("lib", compile("lib", "int lib_fn(int v) { return v; }"));
        p.arm_chaos(FaultPlan::new().with(FaultPoint::VerifierReject, 1, 0));
        let policy = RecoveryPolicy {
            quarantine: QuarantineConfig { max_failures: 5, base_backoff: 500, seed: 3 },
            ..Default::default()
        };
        let mut sup = Supervisor::new(p, policy);
        let r = sup.run("__start").expect("runs");
        // first = 0 (rejected), early = 0 (still backing off, denied
        // without a load), late = 1 (the backoff expired).
        assert_eq!(r.outcome, Outcome::Exit { code: 1 }, "stdout: {}", r.stdout);
        assert_eq!(r.load_rollbacks, 1, "the early retry never reached the loader");
        assert_eq!(sup.process().quarantine_denials(), 1);
        assert!(sup.process().quarantine_report().is_empty(), "success clears the entry");
    }

    #[test]
    fn a_wedged_updater_surfaces_as_a_structured_error() {
        // An updater that *holds* the update lock past its lease (as
        // opposed to crashing and dropping it) leaves nothing abandoned
        // to repair: the guest stalls at the step limit and, before this
        // error existed, the supervisor returned the bare `StepLimit`
        // result as if the guest were merely slow.
        const SPIN: &str = "int w(int x) { return x * 2 + 1; }\n\
             int main(void) {\n\
               int (*f)(int) = &w;\n\
               int acc = 0; int i = 0;\n\
               while (i < 3000) { acc = acc + f(i) % 11; i = i + 1; }\n\
               return acc % 100;\n\
             }";
        let popts = ProcessOptions {
            max_steps: 400_000,
            violation_policy: ViolationPolicy::Recover,
            ..Default::default()
        };
        let policy = RecoveryPolicy { lease_duration: 1_000, ..Default::default() };
        let mut sup = Supervisor::new(boot(SPIN, popts), policy);
        let baseline = sup.run("__start").expect("runs");
        assert!(matches!(baseline.outcome, Outcome::Exit { .. }), "{:?}", baseline.outcome);

        // The updater opens a split transaction (Tary bumped, Bary not)
        // and wedges: the lease is stamped, the lock stays held, and
        // nothing is abandoned — `heal()` has no purchase here.
        let tables = sup.process().tables();
        let split = tables.bump_version_split();
        assert!(!tables.has_abandoned());
        let err = sup.run("__start").expect_err("a wedge is not healable by re-running");
        match err {
            SupervisorError::Wedged { lease_deadline, now, steps } => {
                assert!(lease_deadline > 0, "the stamp is the evidence");
                assert!(now >= lease_deadline, "detected only after expiry");
                assert!(steps > 0, "the stalled run is counted");
            }
            other => panic!("expected Wedged, got {other:?}"),
        }

        // Once the wedged updater finally commits, supervision resumes
        // and the guest reproduces its baseline result.
        split.finish();
        let after = sup.run("__start").expect("runs after the updater commits");
        assert_eq!(after.outcome, baseline.outcome);
    }
}
