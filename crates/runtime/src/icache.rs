//! The predecoded-instruction cache for the SimX64 hot path.
//!
//! Uncached, every [`crate::vm::Vm::step`] pays two byte-level taxes: a
//! linear region scan (`check_exec`) and a full variable-length decode
//! of the instruction at `pc`. Verified MCFI code never changes between
//! a module being flipped executable and the next loader event, so both
//! answers are stable for long stretches — millions of steps for the
//! benchmark workloads. This module memoises them in a flat side-table
//! per executable region, built eagerly with one
//! [`mcfi_machine::decode_sweep`] pass when a region first becomes
//! visible and refreshed lazily for any pc the sweep did not reach
//! (e.g. mid-instruction gadget targets).
//!
//! This cache is the middle rung of the execution fallback ladder
//! *translated → `step_cached` → `step`*: when the baseline-compiled
//! tier ([`crate::trans`]) cannot run a block at `pc` — or has been
//! deoptimized by a generation bump — execution lands here, and only
//! runs fully uncached when predecoding is disabled too.
//!
//! # Invalidation
//!
//! Correctness hangs on one question: *when may a memoised decoding go
//! stale?* Only when the bytes an instruction fetch observes change, and
//! under W^X every such change funnels through four `Sandbox` methods —
//! `map`, `protect`, `load_image`, and `raw_mut` — each of which bumps
//! the sandbox's generation counter. `write8`/`write64` cannot touch
//! executable bytes (they fault on non-writable regions, and no region
//! is ever writable and executable), so they leave the generation alone
//! and the cache survives ordinary data traffic untouched. Every fetch
//! compares the cache's build generation against the sandbox's; any
//! mismatch throws the whole table away and rebuilds, so dlopen-style
//! loader patches (GOT slot rewrites, Bary-slot immediates) are
//! re-decoded before they can execute stale.
//!
//! # Why this cannot weaken the security model
//!
//! The cache never *invents* an answer: a hit replays exactly what
//! `check_exec` + `decode` returned against the same generation's bytes,
//! and every miss calls the real thing. Entries whose byte span crosses
//! their region boundary are never memoised (the spilled-into bytes
//! might be writable data), and the concurrent-attacker harness bypasses
//! the cache entirely — the attacker mutates raw memory between steps,
//! which both bumps the generation *and* uses the uncached [`Vm::step`]
//! fetch path, so TxCheck races are simulated against live memory.
//!
//! [`Vm::step`]: crate::vm::Vm::step

use mcfi_machine::{cost_of, decode, decode_sweep, Inst};

use crate::mem::Sandbox;
use crate::vm::{VmError, VmStats};

/// One predecoded fetch result. `len == 0` marks an empty slot — no
/// valid instruction length is zero, so no sentinel collision exists.
#[derive(Clone, Copy)]
struct Slot {
    inst: Inst,
    len: u8,
    cost: u32,
}

impl Slot {
    const EMPTY: Slot = Slot { inst: Inst::Hlt, len: 0, cost: 0 };
}

/// The decoded view of one executable region, indexed by `pc - start`.
struct Segment {
    start: u64,
    end: u64,
    slots: Vec<Slot>,
}

impl Segment {
    fn contains(&self, pc: u64) -> bool {
        self.start <= pc && pc < self.end
    }
}

/// A per-process predecoded-instruction cache (see the module docs).
pub struct PredecodeCache {
    /// The sandbox generation the segments were built against.
    /// `u64::MAX` is unreachable (generations start at 0 and increment),
    /// so a fresh cache always rebuilds on first fetch.
    generation: u64,
    segments: Vec<Segment>,
    /// Index of the segment that served the last hit — straight-line
    /// code stays inside one module for long runs, so this check almost
    /// always short-circuits the segment search.
    last_segment: usize,
}

impl Default for PredecodeCache {
    fn default() -> Self {
        PredecodeCache::new()
    }
}

impl PredecodeCache {
    /// An empty cache; the first fetch populates it.
    pub fn new() -> Self {
        PredecodeCache { generation: u64::MAX, segments: Vec::new(), last_segment: 0 }
    }

    /// Fetches the instruction at `pc`, serving from the side-table when
    /// the sandbox generation proves the memoised decoding still valid.
    ///
    /// Returns `(inst, len, cost)` — bit-identical to what
    /// `mem.check_exec(pc)` + `decode(mem.raw(), pc)` + `cost_of` would
    /// produce right now.
    ///
    /// # Errors
    ///
    /// Exactly the faults the uncached fetch path raises: `Unmapped` or
    /// `ExecProtected` from the execute check, or a `DecodeError` at a
    /// genuinely undecodable pc.
    #[inline]
    pub fn fetch(
        &mut self,
        mem: &Sandbox,
        pc: u64,
        stats: &mut VmStats,
    ) -> Result<(Inst, u64, u64), VmError> {
        // Hot path, kept small enough to inline into the run loop: the
        // generation still matches, the pc is in the segment that served
        // the last fetch, and its slot is filled. The wrapping subtract
        // against the slot count is one unsigned compare doing double
        // duty as the range test and the bounds-check elision.
        if self.generation == mem.generation() {
            if let Some(seg) = self.segments.get(self.last_segment) {
                let off = pc.wrapping_sub(seg.start) as usize;
                if off < seg.slots.len() {
                    let slot = seg.slots[off];
                    if slot.len != 0 {
                        stats.icache_hits += 1;
                        return Ok((slot.inst, u64::from(slot.len), u64::from(slot.cost)));
                    }
                }
            }
        }
        self.fetch_slow(mem, pc, stats)
    }

    /// Everything the fast path could not serve: rebuilds after a
    /// generation change, cross-segment transfers, and empty slots.
    #[inline(never)]
    fn fetch_slow(
        &mut self,
        mem: &Sandbox,
        pc: u64,
        stats: &mut VmStats,
    ) -> Result<(Inst, u64, u64), VmError> {
        if self.generation != mem.generation() {
            self.rebuild(mem);
            stats.icache_invalidations += 1;
        }
        if let Some(idx) = self.segment_index(pc) {
            self.last_segment = idx;
            let seg = &mut self.segments[idx];
            let off = (pc - seg.start) as usize;
            let slot = seg.slots[off];
            if slot.len != 0 {
                stats.icache_hits += 1;
                return Ok((slot.inst, u64::from(slot.len), u64::from(slot.cost)));
            }
            // A pc the eager sweep walked over — typically mid-instruction.
            // The segment was built from an Rx region at the current
            // generation, so the execute check is already answered; decode
            // live and memoise for the next visit.
            stats.icache_misses += 1;
            let (inst, len) = decode(mem.raw(), pc as usize)?;
            let cost = cost_of(&inst);
            if pc + len as u64 <= seg.end {
                seg.slots[off] = Slot { inst, len: len as u8, cost: cost as u32 };
            }
            return Ok((inst, len as u64, cost));
        }
        // Outside every executable region: defer to the real checks so the
        // caller sees the exact uncached fault (Unmapped/ExecProtected).
        stats.icache_misses += 1;
        mem.check_exec(pc)?;
        let (inst, len) = decode(mem.raw(), pc as usize)?;
        Ok((inst, len as u64, cost_of(&inst)))
    }

    fn segment_index(&self, pc: u64) -> Option<usize> {
        if let Some(seg) = self.segments.get(self.last_segment) {
            if seg.contains(pc) {
                return Some(self.last_segment);
            }
        }
        self.segments.iter().position(|s| s.contains(pc))
    }

    /// Rebuilds every segment from the sandbox's current executable
    /// regions, eagerly sweeping each one into its side-table.
    fn rebuild(&mut self, mem: &Sandbox) {
        self.generation = mem.generation();
        self.segments.clear();
        self.last_segment = 0;
        for r in mem.regions().iter().filter(|r| r.perm.executable()) {
            let region_len = (r.end - r.start) as usize;
            let mut slots = vec![Slot::EMPTY; region_len];
            for (at, inst, len) in decode_sweep(mem.raw(), r.start as usize, r.end as usize) {
                // Never memoise an instruction whose bytes spill past the
                // region: the tail might live in writable memory, whose
                // mutation would not bump the generation. Such a pc stays
                // a permanent (correct, just slow) miss.
                if at + len <= r.end as usize {
                    slots[at - r.start as usize] =
                        Slot { inst, len: len as u8, cost: cost_of(&inst) as u32 };
                }
            }
            self.segments.push(Segment { start: r.start, end: r.end, slots });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{MemFault, Perm};
    use mcfi_machine::{encode, Reg};

    fn stats() -> VmStats {
        VmStats::default()
    }

    fn rx_sandbox(insts: &[Inst]) -> Sandbox {
        let mut mem = Sandbox::new(0x1000);
        mem.map(0, 0x100, Perm::Rw).unwrap();
        mem.load_image(0, &encode(insts)).unwrap();
        mem.protect(0, Perm::Rx).unwrap();
        mem
    }

    #[test]
    fn fetch_matches_pointwise_decode() {
        let insts =
            [Inst::MovImm { dst: Reg::Rax, imm: 7 }, Inst::Push { reg: Reg::Rax }, Inst::Ret];
        let mem = rx_sandbox(&insts);
        let mut cache = PredecodeCache::new();
        let mut st = stats();
        let mut pc = 0u64;
        for inst in insts {
            let (got, len, cost) = cache.fetch(&mem, pc, &mut st).unwrap();
            assert_eq!(got, inst);
            assert_eq!(cost, cost_of(&inst));
            pc += len;
        }
        assert_eq!(st.icache_invalidations, 1, "one eager build");
        assert_eq!(st.icache_hits, 3, "eager sweep prefilled every aligned pc");
    }

    #[test]
    fn mid_instruction_pc_is_a_miss_then_a_hit() {
        // pc 2 is inside the MovImm immediate; the eager sweep skips it,
        // but a gadget-hunting fetch there must still decode live.
        let mem = rx_sandbox(&[
            Inst::MovImm { dst: Reg::Rax, imm: 0x16 }, // 0x16 = Ret opcode
            Inst::Ret,
        ]);
        let mut cache = PredecodeCache::new();
        let mut st = stats();
        let (inst, _, _) = cache.fetch(&mem, 2, &mut st).unwrap();
        assert_eq!(inst, Inst::Ret, "decoding inside the immediate yields the gadget");
        assert_eq!(st.icache_misses, 1);
        let _ = cache.fetch(&mem, 2, &mut st).unwrap();
        assert_eq!(st.icache_hits, 1, "the lazy fill memoised the gadget pc");
    }

    #[test]
    fn generation_bump_rebuilds_and_sees_new_bytes() {
        let mut mem = rx_sandbox(&[Inst::Nop, Inst::Ret]);
        let mut cache = PredecodeCache::new();
        let mut st = stats();
        assert_eq!(cache.fetch(&mem, 0, &mut st).unwrap().0, Inst::Nop);

        // Loader-style patch: flip writable, rewrite, flip back.
        mem.protect(0, Perm::Rw).unwrap();
        mem.load_image(0, &encode(&[Inst::Ret])).unwrap();
        mem.protect(0, Perm::Rx).unwrap();

        let (inst, _, _) = cache.fetch(&mem, 0, &mut st).unwrap();
        assert_eq!(inst, Inst::Ret, "patched byte must be re-decoded");
        assert_eq!(st.icache_invalidations, 2);
    }

    #[test]
    fn faults_match_the_uncached_path() {
        let mut mem = Sandbox::new(0x1000);
        mem.map(0, 0x100, Perm::Rw).unwrap();
        let mut cache = PredecodeCache::new();
        let mut st = stats();
        assert!(matches!(
            cache.fetch(&mem, 0x10, &mut st),
            Err(VmError::Mem(MemFault::ExecProtected { .. }))
        ));
        assert!(matches!(
            cache.fetch(&mem, 0x800, &mut st),
            Err(VmError::Mem(MemFault::Unmapped { .. }))
        ));
    }

    #[test]
    fn data_writes_do_not_invalidate() {
        let mut mem = rx_sandbox(&[Inst::Nop, Inst::Ret]);
        mem.map(0x200, 0x100, Perm::Rw).unwrap();
        let mut cache = PredecodeCache::new();
        let mut st = stats();
        let _ = cache.fetch(&mem, 0, &mut st).unwrap();
        mem.write64(0x200, 0xdead).unwrap();
        let _ = cache.fetch(&mem, 1, &mut st).unwrap();
        assert_eq!(st.icache_invalidations, 1, "store to data must not rebuild the cache");
    }
}
