//! `libms` — the MiniC standard library module.
//!
//! The paper ports MUSL libc to the MCFI runtime "by changing its
//! system-call invocations to MCFI runtime API invocations" (§7). `libms`
//! is this reproduction's analogue: a small C library written in MiniC
//! whose only privileged operations go through the typed syscall stubs of
//! [`crate::synth`]. Like MUSL in the paper it contains an (annotated)
//! inline-assembly function, exercising condition C2's escape hatch.

/// The `libms` source text.
pub const LIBMS_SRC: &str = r#"
// ---- runtime API (provided by the __syscalls module) ----
void __sys_exit(int code);
int __sys_write(int fd, char* buf, int n);
void* __sys_sbrk(int n);
void* __sys_mmap(int n, int prot);
int __sys_mprotect(void* addr, int prot);
int __sys_dlopen(char* name);
void* __sys_dlsym(char* name);
int __sys_cycles(void);
int execve(char* path);

// ---- process control ----
void exit(int code) { __sys_exit(code); }

int dlopen(char* name) { return __sys_dlopen(name); }
void* dlsym(char* name) { return __sys_dlsym(name); }
int cycles(void) { return __sys_cycles(); }

// ---- strings ----
int strlen(char* s) {
  int n = 0;
  while (s[n]) { n = n + 1; }
  return n;
}

int strcmp(char* a, char* b) {
  int i = 0;
  while (a[i] && b[i] && a[i] == b[i]) { i = i + 1; }
  return a[i] - b[i];
}

void* memcpy(void* dst, void* src, int n) {
  char* d = (char*)dst;
  char* s = (char*)src;
  int i = 0;
  while (i < n) { d[i] = s[i]; i = i + 1; }
  return dst;
}

void* memset(void* dst, int v, int n) {
  char* d = (char*)dst;
  int i = 0;
  while (i < n) { d[i] = (char)v; i = i + 1; }
  return dst;
}

// CPU-specific memcpy, as in MUSL: inline assembly with type annotation
// satisfying condition C2 (paper §6/§7).
__annotated void* fast_memcpy(void* dst, void* src, int n) __asm__("rep movsb");

// ---- I/O ----
int puts(char* s) {
  int n = __sys_write(1, s, strlen(s));
  char nl[2];
  nl[0] = '\n';
  nl[1] = '\0';
  int m = __sys_write(1, nl, 1);
  return n + m;
}

int print_str(char* s) { return __sys_write(1, s, strlen(s)); }

int print_int(int x) {
  char buf[32];
  int i = 31;
  int neg = 0;
  buf[31] = '\0';
  if (x == 0) {
    buf[30] = '0';
    return __sys_write(1, &buf[30], 1);
  }
  if (x < 0) { neg = 1; x = -x; }
  while (x > 0) {
    i = i - 1;
    buf[i] = (char)('0' + x % 10);
    x = x / 10;
  }
  if (neg) { i = i - 1; buf[i] = '-'; }
  return __sys_write(1, &buf[i], 31 - i);
}

// ---- allocator: a bump allocator over sbrk ----
char* __heap_cur = 0;
char* __heap_end = 0;

void* malloc(int n) {
  n = (n + 7) / 8 * 8;
  if (__heap_cur == 0 || __heap_cur + n > __heap_end) {
    int chunk = 65536;
    if (n > chunk) { chunk = n + 4096; }
    char* fresh = (char*)__sys_sbrk(chunk);
    if (fresh == 0) { return 0; }
    __heap_cur = fresh;
    __heap_end = fresh + chunk;
  }
  char* out = __heap_cur;
  __heap_cur = __heap_cur + n;
  return (void*)out;
}

void free(void* p) {
  // bump allocator: no-op
}

// ---- pseudo-random numbers (deterministic LCG) ----
int __rand_state = 88172645;

void mc_srand(int seed) {
  __rand_state = seed;
  if (__rand_state == 0) { __rand_state = 1; }
}

int mc_rand(void) {
  __rand_state = (__rand_state * 1103515245 + 12345) % 2147483648;
  if (__rand_state < 0) { __rand_state = -__rand_state; }
  return __rand_state;
}
"#;

/// The startup module: calls `main` and exits with its result. Because
/// `__start` performs an ordinary direct call, `main`'s rewritten return
/// has a legal return site inside the sandbox — the runtime never relies
/// on a raw return into trusted code.
pub const START_SRC: &str = r#"
int main(void);
void __sys_exit(int code);

void __start(void) {
  int code = main();
  __sys_exit(code);
}
"#;

#[cfg(test)]
mod tests {
    use mcfi_analyzer::analyze;
    use mcfi_minic::parse_and_check;

    #[test]
    fn libms_compiles_and_satisfies_conditions() {
        let tp = parse_and_check(super::LIBMS_SRC).unwrap_or_else(|e| panic!("{e}"));
        let report = analyze(&tp, super::LIBMS_SRC);
        // The only recorded casts are MF/SU-style false positives and the
        // void*/char* traffic of the allocator; none are K1.
        assert_eq!(report.k1, 0, "libms must not need K1 fixes: {:?}", report.details);
        // The annotated assembly memcpy does not violate C2.
        assert_eq!(report.c2, 0);
    }

    #[test]
    fn start_module_compiles() {
        parse_and_check(super::START_SRC).unwrap_or_else(|e| panic!("{e}"));
    }
}
