//! The MCFI process: loader, dynamic linker, syscall interposition, and
//! the execution loop.
//!
//! Loading a library follows the paper's three dynamic-linking steps
//! (§6): **module preparation** (code mapped writable, relocated, Bary
//! slots patched, then flipped to executable — W^X throughout), **new
//! CFG generation** (type-matching over the union of all loaded modules'
//! auxiliary information), and **ID-table updates** (one `TxUpdate`, with
//! GOT adjustments between the Tary and Bary phases).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mcfi_cfggen::{generate, ControlFlowPolicy, Placed};
use mcfi_chaos::{Backoff, ChaosInjector, FaultPlan, FaultPoint};
use serde::Serialize;
use mcfi_machine::DecodeError;
use mcfi_minic::types::TypeEnv;
use mcfi_linker::build_plt_stub;
use mcfi_module::{AdmissionError, DecodeLimits, Module, RelocKind};
use mcfi_tables::{
    CheckError, IdTables, LeaseConfig, RetryConfig, TablesConfig, TxCounters, ViolationKind,
    WatchdogVerdict,
};

use crate::icache::PredecodeCache;
use crate::mem::{MemFault, Perm, Sandbox, SandboxSnapshot};
use crate::synth::Sys;
use crate::trans::{Dispatch, TransCache};
use crate::vm::{Event, Vm, VmError, VmState};

/// Address-space layout of a process.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// First code address.
    pub code_base: u64,
    /// Exclusive end of the code region (also sizes the Tary table).
    pub code_limit: u64,
    /// First data address.
    pub data_base: u64,
    /// Exclusive end of static data + GOT area; heap begins here.
    pub heap_base: u64,
    /// Exclusive end of the heap.
    pub heap_limit: u64,
    /// Stack top (stack grows down from here).
    pub stack_top: u64,
    /// Stack size in bytes.
    pub stack_size: u64,
}

impl Default for Layout {
    fn default() -> Self {
        Layout {
            code_base: 0x1000,
            code_limit: 0x10_0000,  // 1 MiB of code
            data_base: 0x10_0000,
            heap_base: 0x18_0000,
            heap_limit: 0x3e_0000,
            stack_top: 0x40_0000, // 4 MiB sandbox
            stack_size: 0x1_0000,
        }
    }
}

/// Process construction options.
#[derive(Clone, Copy, Debug)]
pub struct ProcessOptions {
    /// Address-space layout.
    pub layout: Layout,
    /// Maximum executed instructions before aborting.
    pub max_steps: u64,
    /// Maximum Bary slots (indirect branches) across all loaded modules.
    pub bary_capacity: usize,
    /// Whether [`Process::run`] and [`Process::run_with_updates`] fetch
    /// through the predecoded-instruction cache (see [`crate::icache`]).
    /// Architecturally invisible either way; disable to A/B the cost of
    /// per-step decoding. [`Process::run_with_attacker`] always runs
    /// uncached, since the attacker rewrites raw memory between steps.
    pub predecode: bool,
    /// Whether [`Process::run`] and [`Process::run_with_updates`]
    /// execute through the baseline-compiled tier (see [`crate::trans`]):
    /// basic blocks are lowered to threaded-code form with the Fig. 4
    /// check transaction specialized per indirect-branch site, and any
    /// sandbox generation bump deoptimizes back to the interpreter.
    /// Architecturally invisible; off by default so interpreter-tier
    /// A/B baselines (and their cache-counter contracts) are unchanged.
    /// [`Process::run_with_attacker`] always interprets, for the same
    /// reason it runs uncached.
    pub translate: bool,
    /// What to do when a check transaction halts the program.
    pub violation_policy: ViolationPolicy,
    /// Capacity of the audited-violation log (records kept verbatim
    /// before rate-limiting kicks in; see [`ViolationLog`]).
    pub violation_log_capacity: usize,
    /// Steps between automatic in-run checkpoints (0 = disabled). When
    /// enabled, the run loop captures a full [`Checkpoint`] — resumable
    /// VM state included — every `checkpoint_interval` executed
    /// instructions, keeping the most recent few
    /// ([`Process::checkpoints`]).
    pub checkpoint_interval: u64,
    /// Decode budgets applied when admitting untrusted serialized module
    /// images ([`Process::register_library_image`] /
    /// [`Process::load_image`]). Defaults to
    /// [`DecodeLimits::admission`]; trusted in-memory [`Module`]s loaded
    /// via [`Process::load`] are not subject to these limits.
    pub admission: DecodeLimits,
}

impl Default for ProcessOptions {
    fn default() -> Self {
        ProcessOptions {
            layout: Layout::default(),
            max_steps: 500_000_000,
            bary_capacity: 1 << 16,
            predecode: true,
            translate: false,
            violation_policy: ViolationPolicy::Enforce,
            violation_log_capacity: ViolationLog::CAPACITY,
            checkpoint_interval: 0,
            admission: DecodeLimits::admission(),
        }
    }
}

/// What the runtime does when an indirect branch fails its check
/// transaction — how production CFI deployments stage a rollout.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ViolationPolicy {
    /// Halt the program at the `hlt` (the paper's behavior; the default).
    #[default]
    Enforce,
    /// Record the violation in a bounded log and let the transfer
    /// proceed. Detection without enforcement: the run reports every
    /// would-be violation, but the program keeps its availability.
    Audit,
    /// Halt at the `hlt` like `Enforce`, but signal that a supervisor
    /// intends to *recover*: roll the process back to its last good
    /// checkpoint, quarantine the module that owns the faulting branch,
    /// and re-run (see `mcfi-supervisor`). At the process level this
    /// behaves exactly like `Enforce` — the difference is the layer
    /// above, which escalates to `Enforce` once its retry budget is
    /// spent.
    Recover,
}

/// One audited CFI violation (see [`ViolationPolicy::Audit`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ViolationRecord {
    /// Address of the `hlt` that would have fired.
    pub pc: u64,
    /// Bary slot of the offending indirect branch.
    pub bary_slot: usize,
    /// The address the branch transferred to anyway.
    pub target: u64,
    /// The diagnosed policy failure, when the tables could still explain
    /// it at audit time (`None` if a concurrent update already settled
    /// the skew that produced the halt).
    pub kind: Option<ViolationKind>,
}

/// A bounded log of audited violations.
///
/// Rate-limited by capacity rather than time: a hijacked indirect branch
/// in a hot loop would otherwise grow the log without bound. The first
/// `capacity` records are kept verbatim; everything after is counted in
/// [`ViolationLog::dropped`]. Exactly at the boundary: the `capacity`-th
/// violation is *retained* (`dropped() == 0`), and only the
/// `capacity + 1`-st onward are dropped.
#[derive(Clone, Debug)]
pub struct ViolationLog {
    records: Vec<ViolationRecord>,
    dropped: u64,
    capacity: usize,
}

impl Default for ViolationLog {
    fn default() -> Self {
        Self::with_capacity(Self::CAPACITY)
    }
}

impl ViolationLog {
    /// The default record capacity (see
    /// [`ProcessOptions::violation_log_capacity`] to configure it).
    pub const CAPACITY: usize = 64;

    /// An empty log retaining at most `capacity` records verbatim.
    pub fn with_capacity(capacity: usize) -> Self {
        ViolationLog { records: Vec::new(), dropped: 0, capacity }
    }

    /// The configured record capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn push(&mut self, rec: ViolationRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    /// The retained records, in occurrence order.
    pub fn records(&self) -> &[ViolationRecord] {
        &self.records
    }

    /// Violations observed after the log filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total violations observed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.records.len() as u64 + self.dropped
    }
}

/// Why a run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// The program called `exit`.
    Exit {
        /// Exit code.
        code: i64,
    },
    /// A check transaction halted the program: a CFI violation.
    CfiViolation {
        /// Address of the `hlt`.
        pc: u64,
    },
    /// A hardware-level fault (memory, decode, division).
    Fault(FaultKind),
    /// The step budget ran out.
    StepLimit,
}

/// A structured fault identity (replacing the former free-form string),
/// so fault-injection tests can assert on *which* fault occurred rather
/// than on message substrings. The `Display` output of each variant is
/// byte-identical to the string the corresponding path used to produce.
#[derive(Clone, PartialEq, Debug)]
pub enum FaultKind {
    /// A memory fault raised by the VM (fetch/load/store).
    Mem(MemFault),
    /// An undecodable instruction.
    Decode(DecodeError),
    /// Integer division by zero.
    DivideByZero {
        /// Faulting pc.
        pc: u64,
    },
    /// Jump-table index out of bounds.
    TableIndex {
        /// Faulting pc.
        pc: u64,
    },
    /// A memory fault raised while servicing a syscall (reading guest
    /// buffers or strings).
    SysMem(MemFault),
    /// A syscall number the runtime does not interpose.
    UnknownSyscall(u64),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Mem(m) => write!(f, "memory fault: {m}"),
            FaultKind::Decode(d) => write!(f, "decode fault: {d}"),
            FaultKind::DivideByZero { pc } => write!(f, "division by zero at {pc:#x}"),
            FaultKind::TableIndex { pc } => {
                write!(f, "jump-table index out of range at {pc:#x}")
            }
            FaultKind::SysMem(m) => m.fmt(f),
            FaultKind::UnknownSyscall(num) => write!(f, "unknown syscall {num}"),
        }
    }
}

impl std::error::Error for FaultKind {}

/// Maps a stepping error to the outcome the run loop reports.
fn vm_outcome(e: VmError) -> Outcome {
    match e {
        VmError::StepLimit => Outcome::StepLimit,
        VmError::Mem(m) => Outcome::Fault(FaultKind::Mem(m)),
        VmError::Decode(d) => Outcome::Fault(FaultKind::Decode(d)),
        VmError::DivideByZero { pc } => Outcome::Fault(FaultKind::DivideByZero { pc }),
        VmError::TableIndex { pc } => Outcome::Fault(FaultKind::TableIndex { pc }),
    }
}

/// The result of running a program.
#[derive(Clone, PartialEq, Debug)]
pub struct RunResult {
    /// Why execution ended.
    pub outcome: Outcome,
    /// Everything written to fd 1.
    pub stdout: String,
    /// Instructions executed.
    pub steps: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Check transactions started (retries included).
    pub checks: u64,
    /// Indirect branches taken.
    pub indirect_taken: u64,
    /// Predecode-cache hits (zero on uncached runs).
    pub icache_hits: u64,
    /// Predecode-cache misses (zero on uncached runs).
    pub icache_misses: u64,
    /// Predecode-cache rebuilds forced by loader activity.
    pub icache_invalidations: u64,
    /// Whether control ever reached `execve` (the §8.3 case study probe).
    pub execve_reached: bool,
    /// Update transactions executed during the run (dlopens).
    pub updates: u64,
    /// Guest-level check retries observed by the VM (TaryLoads that saw
    /// version skew; see [`crate::vm::VmStats::check_retries`]).
    pub check_retries: u64,
    /// Host-side table check retries during the run (the shared tables'
    /// counter, as a delta — external updater threads contribute too).
    pub tx_retries: u64,
    /// Bounded-check escalations to the update lock during the run.
    pub tx_escalations: u64,
    /// Abandoned update transactions repaired during the run.
    pub tx_repairs: u64,
    /// Violations recorded (not halted) under the `Audit` policy.
    pub audited_violations: u64,
    /// Dynamic loads rolled back during the run (failed `dlopen`s that
    /// restored the pre-load state).
    pub load_rollbacks: u64,
    /// Checkpoints captured, as a process-lifetime total. Lifetime, not
    /// a delta: supervisor recovery (restore, quarantine, watchdog
    /// repair) happens *between* runs, so the final run's result must
    /// report everything the recovery consumed to get there.
    pub checkpoints: u64,
    /// Checkpoint restores performed (process-lifetime total; see
    /// [`RunResult::checkpoints`]).
    pub restores: u64,
    /// Libraries quarantined — banned after repeated failures or a
    /// supervisor decision (process-lifetime total).
    pub quarantines: u64,
    /// Untrusted module images refused by the admission pipeline —
    /// decode-budget violations, malformed wire bytes, metadata whose
    /// offsets escape the images, or verifier rejects (process-lifetime
    /// total; see [`RunResult::checkpoints`]).
    pub admission_rejects: u64,
    /// Abandoned update transactions healed by the lease watchdog
    /// (tables-lifetime total; see [`RunResult::checkpoints`]).
    pub tx_lease_repairs: u64,
    /// Translated blocks dispatched by the baseline-compiled tier
    /// (zero on untranslated runs; see [`crate::trans`]).
    pub trans_dispatches: u64,
    /// Basic blocks lowered to threaded-code form during the run.
    pub trans_translations: u64,
    /// Translations performed after at least one deoptimization — the
    /// lazy re-translation work a generation bump forces.
    pub trans_retranslations: u64,
    /// Deoptimization events: generation bumps (dlopen, chaos) that
    /// retired live translated blocks back to the interpreter.
    pub trans_deopts: u64,
    /// Dispatches that fell back to single-step interpretation.
    pub trans_fallbacks: u64,
}

/// A loading/linking failure.
#[derive(Clone, PartialEq, Debug)]
pub enum LoadError {
    /// The configured [`Layout`] is inconsistent (overlapping or
    /// inverted regions, GOT area outside the data region): rejected at
    /// [`Process::new`] instead of panicking mid-construction.
    Layout(&'static str),
    /// The regions are exhausted.
    OutOfSpace(&'static str),
    /// An absolute-address relocation referenced an undefined symbol.
    Unresolved(String),
    /// Type environments of modules clash.
    TypeClash(String),
    /// Too many indirect branches for the configured Bary capacity.
    BaryOverflow,
    /// A memory operation failed during loading.
    Mem(String),
    /// The module verifier rejected the prepared image (in this
    /// reproduction, raised by fault injection mid-`dlopen`).
    Rejected(String),
    /// Control-flow-graph regeneration over the loaded modules failed
    /// (likewise raised by fault injection).
    CfgRegen(String),
    /// The admission pipeline refused an untrusted module image: the
    /// wire bytes were malformed, a decode budget was exceeded, decoded
    /// metadata did not fit the images, or the machine-code verifier
    /// rejected the prepared module.
    Admission(AdmissionError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Layout(what) => write!(f, "inconsistent layout: {what}"),
            LoadError::OutOfSpace(what) => write!(f, "{what} region exhausted"),
            LoadError::Unresolved(s) => write!(f, "unresolved symbol `{s}`"),
            LoadError::TypeClash(s) => write!(f, "type clash: {s}"),
            LoadError::BaryOverflow => write!(f, "bary capacity exceeded"),
            LoadError::Mem(s) => write!(f, "loader memory fault: {s}"),
            LoadError::Rejected(s) => write!(f, "module verifier rejected the image: {s}"),
            LoadError::CfgRegen(s) => write!(f, "cfg regeneration failed: {s}"),
            LoadError::Admission(e) => write!(f, "admission rejected the image: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

#[derive(Clone)]
struct LoadedModule {
    module: Module,
    code_base: u64,
    data_base: u64,
}

/// A registered library awaiting `dlopen`. Trusted callers hand the
/// runtime an already-decoded [`Module`]; untrusted images stay as raw
/// bytes and pass through the hardened admission pipeline (budgeted
/// decode, structural validation, machine-code verification) at load
/// time.
#[derive(Clone)]
enum LibraryEntry {
    Decoded(Box<Module>),
    Image(Vec<u8>),
}

/// A restorable snapshot of a process: memory image, loader state, the
/// library registry, run-visible output, and (for in-run checkpoints)
/// the VM's register state.
///
/// The ID tables are deliberately *not* captured: restoring replays a
/// fresh update transaction over the restored module set
/// ([`Process::restore`] calls the same policy-installation path a load
/// does), so concurrent checkers never observe a table rollback — table
/// versions only move forward, exactly as during dynamic linking.
/// Likewise excluded: quarantine state (a recovery must remember *why*
/// it recovered), armed fault plans, and lifetime counters.
#[derive(Clone)]
pub struct Checkpoint {
    mem: SandboxSnapshot,
    /// Digest of `mem` recorded at capture; verified before restore.
    digest: u64,
    /// VM register state for resumable in-run checkpoints (`None` for
    /// between-run checkpoints — restore then re-runs from the entry).
    vm: Option<VmState>,
    modules: Vec<LoadedModule>,
    registry: HashMap<String, LibraryEntry>,
    got: BTreeMap<String, u64>,
    plt: BTreeMap<String, u64>,
    next_code: u64,
    next_data: u64,
    got_next: u64,
    brk: u64,
    total_slots: usize,
    env: TypeEnv,
    stdout: Vec<u8>,
    execve_reached: bool,
    violations: ViolationLog,
    /// Table version at capture (diagnostic only — never restored).
    table_version: u32,
}

impl Checkpoint {
    /// Names of the modules loaded when the checkpoint was taken.
    pub fn module_names(&self) -> Vec<String> {
        self.modules.iter().map(|m| m.module.name.clone()).collect()
    }

    /// Whether the checkpoint captured resumable VM state (an in-run
    /// checkpoint) rather than a between-run snapshot.
    pub fn resumable(&self) -> bool {
        self.vm.is_some()
    }

    /// Executed-instruction count at capture (0 for between-run
    /// checkpoints).
    pub fn steps(&self) -> u64 {
        self.vm.as_ref().map_or(0, |v| v.stats().steps)
    }

    /// The memory-image digest recorded at capture.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The table version at capture (diagnostic — restore never rolls
    /// the tables back to it).
    pub fn table_version(&self) -> u32 {
        self.table_version
    }
}

/// Why a [`Process::restore`] refused to restore a checkpoint. Both
/// variants leave the process state completely untouched — the failure
/// is detected before anything is written.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RestoreError {
    /// Fault injection refused the restore ([`FaultPoint::RestoreFail`]).
    Injected(u64),
    /// The snapshot's recomputed digest no longer matches the digest
    /// recorded at capture: the checkpoint is corrupt.
    Corrupt {
        /// Digest recorded when the checkpoint was taken.
        expected: u64,
        /// Digest recomputed from the stored snapshot.
        actual: u64,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Injected(p) => {
                write!(f, "restore refused by injected fault (parameter {p})")
            }
            RestoreError::Corrupt { expected, actual } => write!(
                f,
                "checkpoint corrupt: digest {actual:#018x} != recorded {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Quarantine policy for repeatedly failing dynamic loads (opt-in via
/// [`Process::set_quarantine`]).
///
/// Each `dlopen` failure for a library backs off its next retry through
/// the shared seeded [`Backoff`] helper (exponential in the failure
/// count, plus deterministic per-library jitter so herds of retries
/// decorrelate). After `max_failures` failures the library is banned
/// outright: `dlopen` reports failure to the guest without even
/// attempting the load.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct QuarantineConfig {
    /// Failures before a permanent ban.
    pub max_failures: u32,
    /// Base backoff in simulated cycles (doubles per failure).
    pub base_backoff: u64,
    /// Seed for the deterministic retry jitter.
    pub seed: u64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig { max_failures: 3, base_backoff: 1_000, seed: 1 }
    }
}

impl QuarantineConfig {
    /// The [`Backoff`] policy this config induces.
    pub fn backoff(&self) -> Backoff {
        Backoff::new(self.seed, self.base_backoff)
    }
}

/// Why a library entered quarantine (the machine-readable side of
/// [`QuarantineStatus::last_error`], for supervisor policy decisions).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum QuarantineReason {
    /// A load attempt failed inside the transactional loader (region
    /// exhaustion, unresolved symbols, type clashes, injected faults).
    LoadFailed,
    /// The admission pipeline refused the image itself: malformed wire
    /// bytes, a decode-budget violation, metadata that escapes the
    /// code/data images, or a machine-code verifier reject.
    MalformedImage,
    /// A supervisor attributed a CFI violation to the module and banned
    /// it outright.
    CfiViolation,
}

/// Per-library quarantine state (see [`Process::quarantine_report`]).
#[derive(Clone, Debug, Serialize)]
pub struct QuarantineStatus {
    /// The library's registry name (or module name, for violation bans).
    pub library: String,
    /// Load failures observed so far.
    pub failures: u32,
    /// Earliest cycle at which the next load attempt is allowed.
    pub retry_at: u64,
    /// Whether the library is permanently banned.
    pub banned: bool,
    /// Why the most recent failure quarantined the library.
    pub reason: QuarantineReason,
    /// Human-readable reason for the most recent failure.
    pub last_error: String,
}

#[derive(Clone, Debug)]
struct QuarantineEntry {
    failures: u32,
    retry_at: u64,
    banned: bool,
    reason: QuarantineReason,
    last_error: String,
}

/// An MCFI process: sandboxed memory, shared ID tables, loaded modules,
/// GOT/PLT state, and the trusted runtime services.
pub struct Process {
    opts: ProcessOptions,
    mem: Sandbox,
    tables: Arc<IdTables>,
    modules: Vec<LoadedModule>,
    registry: HashMap<String, LibraryEntry>,
    /// symbol -> GOT slot address (for PLT-routed imports).
    got: BTreeMap<String, u64>,
    /// symbol -> PLT stub entry address.
    plt: BTreeMap<String, u64>,
    next_code: u64,
    next_data: u64,
    got_next: u64,
    brk: u64,
    total_slots: usize,
    /// Union of all loaded modules' type environments, grown at load time
    /// so clashes surface as load errors (not CFG-generation panics).
    env: TypeEnv,
    stdout: Vec<u8>,
    execve_reached: bool,
    updates: u64,
    /// Published cycle counter (for external updater threads).
    cycles_shared: Arc<AtomicU64>,
    /// Predecoded-instruction cache for the cached run loops. Kept on
    /// the process so its side-tables survive across consecutive runs.
    icache: PredecodeCache,
    /// Translated-block cache of the baseline-compiled tier (see
    /// [`crate::trans`]); like the icache it survives across runs and
    /// deoptimizes on any sandbox generation bump.
    trans: TransCache,
    /// Armed fault injector, shared with the tables (see [`mcfi_chaos`]).
    chaos: Option<Arc<ChaosInjector>>,
    /// Dynamic loads rolled back after a mid-`dlopen` failure.
    load_rollbacks: u64,
    /// Violations recorded under [`ViolationPolicy::Audit`].
    violations: ViolationLog,
    /// Recent checkpoints, oldest first (bounded; see `MAX_CHECKPOINTS`).
    checkpoints: Vec<Checkpoint>,
    /// Checkpoints captured over the process lifetime.
    checkpoints_taken: u64,
    /// Successful restores over the process lifetime.
    restores: u64,
    /// VM state to resume from on the next run (set by a restore of an
    /// in-run checkpoint; consumed by `start_vm`).
    pending_resume: Option<VmState>,
    /// Quarantine policy (None = quarantine disabled, failed loads
    /// retry freely — the pre-supervisor behavior).
    quarantine: Option<QuarantineConfig>,
    /// Per-library quarantine state.
    quarantine_entries: HashMap<String, QuarantineEntry>,
    /// Libraries banned so far (process lifetime total).
    quarantines: u64,
    /// `dlopen`s refused without a load attempt (backoff or ban).
    quarantine_denials: u64,
    /// Untrusted images refused by admission (process lifetime total).
    admission_rejects: u64,
}

/// Snapshot of the loader-visible process state, taken before a dynamic
/// load so a mid-load failure can be rolled back (§6's three steps become
/// one transaction). The ID tables need no snapshot: every load path
/// mutates them only in the final, infallible update transaction.
struct LoadTx {
    mem: SandboxSnapshot,
    modules_len: usize,
    got: BTreeMap<String, u64>,
    plt: BTreeMap<String, u64>,
    next_code: u64,
    next_data: u64,
    got_next: u64,
    total_slots: usize,
    env: TypeEnv,
}

/// Rejects inconsistent [`Layout`]s before any of their arithmetic runs:
/// every subtraction below is used unchecked by the constructor and the
/// loader, and the GOT reservation (`data_base .. data_base + 0x1000`)
/// must sit inside the mapped data region so `install_policy`'s GOT
/// writes are infallible by construction.
fn validate_layout(l: &Layout) -> Result<(), LoadError> {
    if l.code_base > l.code_limit {
        return Err(LoadError::Layout("code_base above code_limit"));
    }
    if l.code_limit > l.data_base {
        return Err(LoadError::Layout("code region overlaps the data region"));
    }
    if l.data_base.checked_add(0x1000).is_none_or(|got_end| got_end > l.heap_base) {
        return Err(LoadError::Layout("no room for the GOT area below heap_base"));
    }
    if l.heap_base > l.heap_limit {
        return Err(LoadError::Layout("heap_base above heap_limit"));
    }
    if l.stack_size > l.stack_top {
        return Err(LoadError::Layout("stack_size exceeds stack_top"));
    }
    if l.heap_limit > l.stack_top - l.stack_size {
        return Err(LoadError::Layout("heap overlaps the stack region"));
    }
    Ok(())
}

impl Process {
    /// Creates an empty process.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Layout`] when the configured [`Layout`] is
    /// inconsistent (inverted or overlapping regions, no room for the
    /// GOT inside the data region) and [`LoadError::Mem`] when the
    /// sandbox refuses a region mapping — a mis-laid-out process is an
    /// admission failure, not a host abort.
    pub fn new(opts: ProcessOptions) -> Result<Self, LoadError> {
        Self::with_tables(opts, None)
    }

    /// Like [`Process::new`], but instead of allocating private ID
    /// tables the process adopts `tables` — a per-process delta shard
    /// attached to a [`crate::SharedImage`]'s base. All table traffic
    /// (checks, policy installs, repairs) goes through the shard's
    /// copy-on-write layering; update transactions sweep the whole
    /// image.
    ///
    /// # Errors
    ///
    /// [`LoadError::Layout`] when the shard's sizing disagrees with this
    /// process's layout/`bary_capacity` — the tables must cover exactly
    /// the same code region and slot space.
    pub fn new_attached(opts: ProcessOptions, tables: Arc<IdTables>) -> Result<Self, LoadError> {
        let want = TablesConfig {
            code_size: opts.layout.code_limit as usize,
            bary_slots: opts.bary_capacity,
        };
        if tables.config() != want {
            return Err(LoadError::Layout("attached tables sized for a different image layout"));
        }
        Self::with_tables(opts, Some(tables))
    }

    fn with_tables(
        opts: ProcessOptions,
        tables: Option<Arc<IdTables>>,
    ) -> Result<Self, LoadError> {
        let l = opts.layout;
        validate_layout(&l)?;
        let mut mem = Sandbox::new(l.stack_top as usize);
        mem.map(l.data_base, l.heap_limit - l.data_base, Perm::Rw)
            .map_err(|e| LoadError::Mem(format!("mapping the data region: {e}")))?;
        mem.map(l.stack_top - l.stack_size, l.stack_size, Perm::Rw)
            .map_err(|e| LoadError::Mem(format!("mapping the stack region: {e}")))?;
        let tables = tables.unwrap_or_else(|| {
            Arc::new(IdTables::new(TablesConfig {
                code_size: l.code_limit as usize,
                bary_slots: opts.bary_capacity,
            }))
        });
        // Reserve a GOT area at the start of the data region.
        let got_area = l.data_base;
        Ok(Process {
            opts,
            mem,
            tables,
            modules: Vec::new(),
            registry: HashMap::new(),
            got: BTreeMap::new(),
            plt: BTreeMap::new(),
            next_code: l.code_base,
            next_data: got_area + 0x1000, // 4 KiB of GOT slots
            got_next: got_area,
            brk: l.heap_base,
            total_slots: 0,
            env: TypeEnv::new(),
            stdout: Vec::new(),
            execve_reached: false,
            updates: 0,
            cycles_shared: Arc::new(AtomicU64::new(0)),
            icache: PredecodeCache::new(),
            trans: TransCache::new(),
            chaos: None,
            load_rollbacks: 0,
            violations: ViolationLog::with_capacity(opts.violation_log_capacity),
            checkpoints: Vec::new(),
            checkpoints_taken: 0,
            restores: 0,
            pending_resume: None,
            quarantine: None,
            quarantine_entries: HashMap::new(),
            quarantines: 0,
            quarantine_denials: 0,
            admission_rejects: 0,
        })
    }

    /// Arms deterministic fault injection over this process and its ID
    /// tables. The returned injector reports which faults actually fired
    /// (see [`ChaosInjector::fired`]).
    pub fn arm_chaos(&mut self, plan: FaultPlan) -> Arc<ChaosInjector> {
        let injector = ChaosInjector::arm(plan);
        self.tables.arm_chaos(Arc::clone(&injector));
        self.chaos = Some(Arc::clone(&injector));
        injector
    }

    /// Disarms fault injection on the process and its tables.
    pub fn disarm_chaos(&mut self) {
        self.tables.disarm_chaos();
        self.chaos = None;
    }

    fn chaos_fire(&self, point: FaultPoint) -> Option<u64> {
        self.chaos.as_ref().and_then(|c| c.fire(point))
    }

    /// The violations recorded by the most recent run under
    /// [`ViolationPolicy::Audit`] (empty under `Enforce`).
    pub fn violation_log(&self) -> &ViolationLog {
        &self.violations
    }

    /// Dynamic loads rolled back so far (process lifetime total).
    pub fn load_rollbacks(&self) -> u64 {
        self.load_rollbacks
    }

    /// Most recent checkpoints, at most `MAX_CHECKPOINTS` (4).
    const MAX_CHECKPOINTS: usize = 4;

    /// Checkpoints currently retained, oldest first.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Checkpoints captured so far (process lifetime total).
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Successful restores so far (process lifetime total).
    pub fn restores(&self) -> u64 {
        self.restores
    }

    /// Captures a between-run checkpoint (no VM state: a restore re-runs
    /// from an entry point) and retains it. Returns a reference to the
    /// stored checkpoint.
    pub fn checkpoint_now(&mut self) -> &Checkpoint {
        let cp = self.capture_checkpoint(None);
        self.push_checkpoint(cp);
        self.checkpoints.last().expect("just pushed")
    }

    fn capture_checkpoint(&mut self, vm: Option<&Vm>) -> Checkpoint {
        let mem = self.mem.snapshot();
        let mut digest = mem.digest();
        // A corrupt checkpoint is modeled by skewing the *recorded*
        // digest: the snapshot payload is opaque to this layer, and an
        // unverifiable checkpoint is exactly what storage corruption
        // produces — `restore` detects the mismatch and refuses.
        if let Some(p) = self.chaos_fire(FaultPoint::CheckpointCorrupt) {
            digest ^= p | 1;
        }
        self.checkpoints_taken += 1;
        Checkpoint {
            mem,
            digest,
            vm: vm.map(Vm::snapshot),
            modules: self.modules.clone(),
            registry: self.registry.clone(),
            got: self.got.clone(),
            plt: self.plt.clone(),
            next_code: self.next_code,
            next_data: self.next_data,
            got_next: self.got_next,
            brk: self.brk,
            total_slots: self.total_slots,
            env: self.env.clone(),
            stdout: self.stdout.clone(),
            execve_reached: self.execve_reached,
            violations: self.violations.clone(),
            table_version: self.tables.current_version().raw(),
        }
    }

    fn push_checkpoint(&mut self, cp: Checkpoint) {
        if self.checkpoints.len() == Self::MAX_CHECKPOINTS {
            self.checkpoints.remove(0);
        }
        self.checkpoints.push(cp);
    }

    /// Restores the process to `cp`: memory image, loader state, library
    /// registry, and run-visible output all return to their captured
    /// values. The ID tables are *re-synchronized*, not rolled back — a
    /// fresh update transaction installs the CFG of the restored module
    /// set, so table versions keep moving forward and the predecode
    /// cache invalidates itself via the sandbox generation bump.
    ///
    /// If `cp` captured VM state, the next run resumes from exactly that
    /// state (the entry argument is ignored); otherwise the next run
    /// starts from its entry point as usual.
    ///
    /// # Errors
    ///
    /// Refuses — leaving the process untouched — when fault injection
    /// fails the restore or the checkpoint's digest no longer matches.
    pub fn restore(&mut self, cp: &Checkpoint) -> Result<(), RestoreError> {
        if let Some(p) = self.chaos_fire(FaultPoint::RestoreFail) {
            return Err(RestoreError::Injected(p));
        }
        let actual = cp.mem.digest();
        if actual != cp.digest {
            return Err(RestoreError::Corrupt { expected: cp.digest, actual });
        }
        self.mem.restore(cp.mem.clone());
        self.modules = cp.modules.clone();
        self.registry = cp.registry.clone();
        self.got = cp.got.clone();
        self.plt = cp.plt.clone();
        self.next_code = cp.next_code;
        self.next_data = cp.next_data;
        self.got_next = cp.got_next;
        self.brk = cp.brk;
        self.total_slots = cp.total_slots;
        self.env = cp.env.clone();
        self.stdout = cp.stdout.clone();
        self.execve_reached = cp.execve_reached;
        self.violations = cp.violations.clone();
        self.pending_resume = cp.vm.clone();
        // Re-sync the tables to the restored module set with a forward
        // update transaction (never a rollback).
        self.install_policy();
        self.restores += 1;
        Ok(())
    }

    /// Enables quarantine-with-backoff for failing dynamic loads.
    pub fn set_quarantine(&mut self, config: QuarantineConfig) {
        self.quarantine = Some(config);
    }

    /// The active violation policy.
    pub fn violation_policy(&self) -> ViolationPolicy {
        self.opts.violation_policy
    }

    /// Changes the violation policy between runs (supervisor use:
    /// escalating [`ViolationPolicy::Recover`] to `Enforce` once the
    /// recovery budget is spent).
    pub fn set_violation_policy(&mut self, policy: ViolationPolicy) {
        self.opts.violation_policy = policy;
    }

    /// Changes the in-run checkpoint cadence (steps between automatic
    /// checkpoints; 0 disables them). Takes effect on the next run.
    pub fn set_checkpoint_interval(&mut self, steps: u64) {
        self.opts.checkpoint_interval = steps;
    }

    /// Changes the step budget for subsequent runs (fleet use: a
    /// per-request deadline, so one livelocked request times out with
    /// [`Outcome::StepLimit`] instead of starving its host's loop).
    pub fn set_max_steps(&mut self, steps: u64) {
        self.opts.max_steps = steps;
    }

    /// Bans `name` outright (supervisor use: the module owned a faulting
    /// branch). Counts as a quarantine regardless of its failure history.
    pub fn quarantine_module(&mut self, name: &str, reason: &str) {
        let entry = self.quarantine_entries.entry(name.to_string()).or_insert(QuarantineEntry {
            failures: 0,
            retry_at: 0,
            banned: false,
            reason: QuarantineReason::CfiViolation,
            last_error: String::new(),
        });
        entry.failures += 1;
        entry.reason = QuarantineReason::CfiViolation;
        entry.last_error = reason.to_string();
        if !entry.banned {
            entry.banned = true;
            self.quarantines += 1;
        }
    }

    /// The quarantine state of every library that has ever failed,
    /// sorted by name.
    pub fn quarantine_report(&self) -> Vec<QuarantineStatus> {
        let mut out: Vec<QuarantineStatus> = self
            .quarantine_entries
            .iter()
            .map(|(name, e)| QuarantineStatus {
                library: name.clone(),
                failures: e.failures,
                retry_at: e.retry_at,
                banned: e.banned,
                reason: e.reason,
                last_error: e.last_error.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.library.cmp(&b.library));
        out
    }

    /// Libraries banned so far (process lifetime total).
    pub fn quarantine_count(&self) -> u64 {
        self.quarantines
    }

    /// `dlopen`s refused without a load attempt (backoff or ban).
    pub fn quarantine_denials(&self) -> u64 {
        self.quarantine_denials
    }

    /// Whether a `dlopen` of `name` at cycle `now` should be refused
    /// without attempting the load.
    fn quarantine_denied(&self, name: &str, now: u64) -> bool {
        match self.quarantine_entries.get(name) {
            Some(e) => e.banned || now < e.retry_at,
            None => false,
        }
    }

    /// Records a load failure for `name`, arming backoff (and, past the
    /// budget, a permanent ban). No-op unless quarantine is enabled.
    fn note_load_failure(&mut self, name: &str, now: u64, err: &LoadError) {
        let Some(cfg) = self.quarantine else { return };
        let reason = match err {
            LoadError::Admission(_) => QuarantineReason::MalformedImage,
            _ => QuarantineReason::LoadFailed,
        };
        let entry = self.quarantine_entries.entry(name.to_string()).or_insert(QuarantineEntry {
            failures: 0,
            retry_at: 0,
            banned: false,
            reason,
            last_error: String::new(),
        });
        entry.failures += 1;
        entry.reason = reason;
        entry.last_error = err.to_string();
        if entry.failures >= cfg.max_failures {
            if !entry.banned {
                entry.banned = true;
                self.quarantines += 1;
            }
            return;
        }
        entry.retry_at = now.saturating_add(cfg.backoff().delay(name, entry.failures));
    }

    /// Clears quarantine state after a successful load.
    fn note_load_success(&mut self, name: &str) {
        self.quarantine_entries.remove(name);
    }

    /// The name of the loaded module whose code region contains `pc`
    /// (supervisor use: attributing a CFI violation to a module).
    pub fn module_at(&self, pc: u64) -> Option<&str> {
        self.modules.iter().find_map(|lm| {
            let len = lm.module.code.len().max(4) as u64;
            (lm.code_base <= pc && pc < lm.code_base + len).then_some(lm.module.name.as_str())
        })
    }

    /// Arms an updater lease on the shared tables, with deadlines stamped
    /// against this process's simulated cycle counter. Once armed, every
    /// update transaction advertises `acquire-cycle + duration` while it
    /// holds the update lock; a watchdog that sees the deadline expired
    /// with the lock free knows the updater died mid-transaction.
    pub fn enable_update_lease(&mut self, duration: u64) {
        self.tables.set_lease(LeaseConfig { clock: self.cycle_counter(), duration });
    }

    /// Polls the updater watchdog at the current simulated cycle (see
    /// [`mcfi_tables::IdTablesAt::watchdog_poll`]). Healing an abandoned
    /// transaction counts into [`RunResult::tx_lease_repairs`].
    pub fn watchdog_poll(&self) -> WatchdogVerdict {
        self.tables.watchdog_poll(self.cycles_shared.load(Ordering::Relaxed))
    }

    /// The shared ID tables (hand these to an updater thread to exercise
    /// concurrent update transactions, as in Fig. 6).
    pub fn tables(&self) -> Arc<IdTables> {
        Arc::clone(&self.tables)
    }

    /// A live view of the VM's cycle counter, updated during runs.
    pub fn cycle_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.cycles_shared)
    }

    /// Registers a module that `dlopen` can load later (the "file system"
    /// of loadable libraries). The module is trusted: it skips the
    /// admission pipeline and loads through [`Process::load`].
    pub fn register_library(&mut self, file_name: &str, module: Module) {
        self.registry.insert(file_name.to_string(), LibraryEntry::Decoded(Box::new(module)));
    }

    /// Registers an *untrusted* serialized module image that `dlopen`
    /// can attempt to load later. The bytes are kept verbatim; at load
    /// time they pass through the full admission pipeline —
    /// budget-limited decode ([`ProcessOptions::admission`]), structural
    /// validation, and the machine-code verifier — inside the usual load
    /// transaction, so a hostile image is rejected with `dlopen`
    /// returning 0 and the process state untouched.
    pub fn register_library_image(&mut self, file_name: &str, image: Vec<u8>) {
        self.registry.insert(file_name.to_string(), LibraryEntry::Image(image));
    }

    /// Untrusted images refused by the admission pipeline (process
    /// lifetime total).
    pub fn admission_rejects(&self) -> u64 {
        self.admission_rejects
    }

    /// Loaded modules' names and code bases (diagnostics).
    pub fn loaded(&self) -> Vec<(String, u64)> {
        self.modules.iter().map(|m| (m.module.name.clone(), m.code_base)).collect()
    }

    /// The sandbox (for verifier access and attack simulations).
    pub fn mem(&self) -> &Sandbox {
        &self.mem
    }

    /// Resolves a global variable to its absolute data address.
    pub fn global(&self, name: &str) -> Option<u64> {
        for lm in &self.modules {
            if let Some(g) = lm.module.globals.get(name) {
                return Some(lm.data_base + g.offset as u64);
            }
        }
        None
    }

    /// Reads `len` guest bytes at `addr` through the sandbox's permission
    /// checks — the host side of a shared-memory mailbox (e.g. a network
    /// harness peeking a response buffer the guest filled).
    pub fn peek(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        (0..len as u64).map(|i| self.mem.read8(addr + i)).collect()
    }

    /// Writes `bytes` into guest data memory at `addr` through the
    /// sandbox's permission checks — the host side of a shared-memory
    /// mailbox (e.g. a network harness delivering a packet into the
    /// guest's receive buffer between runs). Data writes never touch code
    /// pages, so the predecode/translation caches stay valid.
    pub fn poke(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        for (i, &b) in bytes.iter().enumerate() {
            self.mem.write8(addr + i as u64, b)?;
        }
        Ok(())
    }

    /// Reads a guest `int` (8 bytes, as MiniC lays them out) at the
    /// address of global `name`.
    pub fn peek_global_int(&self, name: &str) -> Option<i64> {
        let addr = self.global(name)?;
        self.mem.read64(addr).ok().map(|v| v as i64)
    }

    /// Writes a guest `int` global by `name`; returns `false` when the
    /// global does not exist or the write faults.
    pub fn poke_global_int(&mut self, name: &str, value: i64) -> bool {
        match self.global(name) {
            Some(addr) => self.mem.write64(addr, value as u64).is_ok(),
            None => false,
        }
    }

    /// The loaded modules with their code bases, for policy generation by
    /// external tooling (e.g. installing a baseline policy).
    pub fn placed_modules(&self) -> Vec<Placed<'_>> {
        self.modules
            .iter()
            .map(|lm| Placed { module: &lm.module, code_base: lm.code_base })
            .collect()
    }

    /// Replaces the enforced policy with an externally generated one via
    /// a fresh update transaction — used to run the same binary under
    /// classic or coarse CFI for the §8.3 comparisons.
    pub fn install_custom_policy(&mut self, policy: &ControlFlowPolicy) {
        let tary = |addr: u64| policy.tary.get(&addr).copied();
        let bary = |slot: usize| policy.bary.get(slot).map(|b| b.ecn);
        self.tables.update_with(tary, bary, || {});
        self.updates += 1;
    }

    /// Resolves an exported function to its absolute address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        for lm in &self.modules {
            if let Some(f) = lm.module.functions.get(name) {
                if f.size > 0 && !f.is_static {
                    return Some(lm.code_base + f.offset as u64);
                }
            }
        }
        None
    }

    fn resolve_func(&self, module_idx: usize, name: &str) -> Option<u64> {
        let own = &self.modules[module_idx];
        if let Some(f) = own.module.functions.get(name) {
            if f.size > 0 {
                return Some(own.code_base + f.offset as u64);
            }
        }
        for lm in &self.modules {
            if let Some(f) = lm.module.functions.get(name) {
                if f.size > 0 && !f.is_static {
                    return Some(lm.code_base + f.offset as u64);
                }
            }
        }
        None
    }

    fn resolve_global(&self, module_idx: usize, name: &str) -> Option<u64> {
        let own = &self.modules[module_idx];
        if let Some(g) = own.module.globals.get(name) {
            return Some(own.data_base + g.offset as u64);
        }
        if name.starts_with("__str") {
            return None; // string-pool globals are module-private
        }
        for lm in &self.modules {
            if let Some(g) = lm.module.globals.get(name) {
                return Some(lm.data_base + g.offset as u64);
            }
        }
        None
    }

    /// Loads a module into the process and installs the new CFG.
    ///
    /// The load is transactional: if any step fails — region exhaustion,
    /// an unresolved relocation, a type clash, or an injected verifier /
    /// CFG-regeneration fault — the sandbox mappings and loader state are
    /// restored to their pre-load values and the process keeps executing
    /// under the CFG it had before the call.
    ///
    /// # Errors
    ///
    /// Fails on exhausted regions, unresolved absolute relocations, or
    /// type clashes.
    pub fn load(&mut self, module: Module) -> Result<(), LoadError> {
        let tx = self.begin_load();
        let result = self.load_no_update(module).and_then(|()| self.finish_load());
        if let Err(e) = result {
            self.rollback_load(tx);
            return Err(e);
        }
        Ok(())
    }

    /// Loads several modules, then installs the CFG once. Transactional
    /// as a unit: a failure anywhere rolls back every module in the batch.
    ///
    /// # Errors
    ///
    /// See [`Process::load`].
    pub fn load_all(&mut self, modules: Vec<Module>) -> Result<(), LoadError> {
        let tx = self.begin_load();
        let result = modules
            .into_iter()
            .try_for_each(|m| self.load_no_update(m))
            .and_then(|()| self.finish_load());
        if let Err(e) = result {
            self.rollback_load(tx);
            return Err(e);
        }
        Ok(())
    }

    /// Admits an *untrusted* serialized module image: decodes it under
    /// the process's [`DecodeLimits`] budget, validates the decoded
    /// metadata against the images, then loads it through
    /// [`Process::load_untrusted`] (which additionally runs the
    /// machine-code verifier inside the load transaction).
    ///
    /// The `malformed-image` chaos point corrupts one byte of the image
    /// here — before decoding — so fault-injection tests exercise the
    /// full reject → rollback → quarantine path on live loads.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Admission`] when the image is refused (also
    /// counted in [`Process::admission_rejects`]), or any ordinary
    /// [`LoadError`] from the transactional load.
    pub fn load_image(&mut self, mut bytes: Vec<u8>) -> Result<(), LoadError> {
        if let Some(p) = self.chaos_fire(FaultPoint::MalformedImage) {
            if !bytes.is_empty() {
                let at = (p as usize) % bytes.len();
                bytes[at] ^= 0xa5;
            }
        }
        let module = match Module::decode_image(&bytes, &self.opts.admission) {
            Ok(m) => m,
            Err(e) => {
                self.admission_rejects += 1;
                return Err(LoadError::Admission(e));
            }
        };
        self.load_untrusted(module)
    }

    /// Loads an already-decoded but *untrusted* module: like
    /// [`Process::load`], but the machine-code verifier runs inside the
    /// load transaction (after preparation, before the CFG install), so
    /// an uninstrumented or malformed module is rejected and every state
    /// change is rolled back.
    ///
    /// # Errors
    ///
    /// See [`Process::load`]; verifier rejects surface as
    /// [`LoadError::Admission`] with
    /// [`AdmissionError::VerifierReject`] and count into
    /// [`Process::admission_rejects`].
    pub fn load_untrusted(&mut self, module: Module) -> Result<(), LoadError> {
        let tx = self.begin_load();
        let result = self
            .load_no_update(module)
            .and_then(|()| self.verify_last_module())
            .and_then(|()| self.finish_load());
        if let Err(e) = result {
            self.rollback_load(tx);
            if matches!(e, LoadError::Admission(_)) {
                self.admission_rejects += 1;
            }
            return Err(e);
        }
        Ok(())
    }

    /// Runs the machine-code verifier over the most recently prepared
    /// module (still pristine in the module list — relocations are
    /// applied to the sandbox copy, not the stored image).
    fn verify_last_module(&mut self) -> Result<(), LoadError> {
        let Some(lm) = self.modules.last() else { return Ok(()) };
        let report = mcfi_verifier::verify(&lm.module);
        if report.ok() {
            return Ok(());
        }
        let reason = report
            .violations
            .iter()
            .take(4)
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        Err(LoadError::Admission(AdmissionError::VerifierReject { reason }))
    }

    fn begin_load(&self) -> LoadTx {
        LoadTx {
            mem: self.mem.snapshot(),
            modules_len: self.modules.len(),
            got: self.got.clone(),
            plt: self.plt.clone(),
            next_code: self.next_code,
            next_data: self.next_data,
            got_next: self.got_next,
            total_slots: self.total_slots,
            env: self.env.clone(),
        }
    }

    fn rollback_load(&mut self, tx: LoadTx) {
        self.mem.restore(tx.mem);
        self.modules.truncate(tx.modules_len);
        self.got = tx.got;
        self.plt = tx.plt;
        self.next_code = tx.next_code;
        self.next_data = tx.next_data;
        self.got_next = tx.got_next;
        self.total_slots = tx.total_slots;
        self.env = tx.env;
        self.load_rollbacks += 1;
    }

    /// The fallible tail of a load: the verifier pass and CFG
    /// regeneration (both of which fault injection can fail), then the
    /// infallible table-update transaction.
    fn finish_load(&mut self) -> Result<(), LoadError> {
        if let Some(p) = self.chaos_fire(FaultPoint::VerifierReject) {
            return Err(LoadError::Rejected(format!("injected fault (parameter {p})")));
        }
        if let Some(p) = self.chaos_fire(FaultPoint::CfgRegenFail) {
            return Err(LoadError::CfgRegen(format!("injected fault (parameter {p})")));
        }
        self.install_policy();
        Ok(())
    }

    fn alloc_code(&mut self, len: usize) -> Result<u64, LoadError> {
        let base = (self.next_code + 15) & !15;
        let end = base + len as u64;
        if end > self.opts.layout.code_limit {
            return Err(LoadError::OutOfSpace("code"));
        }
        self.next_code = end;
        Ok(base)
    }

    fn load_no_update(&mut self, module: Module) -> Result<(), LoadError> {
        // The union of auxiliary type information must be consistent
        // before any state changes (paper §6: merging is a union).
        self.env
            .merge(&module.aux.env)
            .map_err(|e| LoadError::TypeClash(e.to_string()))?;

        // --- step 1: module preparation ---
        let code_base = self.alloc_code(module.code.len().max(4))?;
        let data_base = (self.next_data + 15) & !15;
        let data_end = data_base + module.data.len() as u64;
        if data_end > self.opts.layout.heap_base {
            return Err(LoadError::OutOfSpace("data"));
        }
        self.next_data = data_end;

        // Code pages start writable but not executable (§6 step 1).
        self.mem
            .map(code_base, module.code.len().max(4) as u64, Perm::Rw)
            .map_err(|e| LoadError::Mem(e.to_string()))?;
        self.mem
            .load_image(code_base, &module.code)
            .map_err(|e| LoadError::Mem(e.to_string()))?;
        if !module.data.is_empty() {
            self.mem
                .load_image(data_base, &module.data)
                .map_err(|e| LoadError::Mem(e.to_string()))?;
        }

        let module_idx = self.modules.len();
        self.modules.push(LoadedModule { module, code_base, data_base });

        // Assign global Bary slots and patch the BaryLoad immediates
        // ("the loader patches the code to embed constant Bary table
        // indexes", §5.1).
        let branch_count = self.modules[module_idx].module.aux.indirect_branches.len();
        if self.total_slots + branch_count > self.opts.bary_capacity {
            return Err(LoadError::BaryOverflow);
        }
        for bi in 0..branch_count {
            let check_offset = self.modules[module_idx].module.aux.indirect_branches[bi].check_offset;
            let slot = (self.total_slots + bi) as u32;
            let at = code_base + check_offset as u64 + 2;
            for (k, byte) in slot.to_le_bytes().into_iter().enumerate() {
                self.mem
                    .write8(at + k as u64, byte)
                    .map_err(|e| LoadError::Mem(e.to_string()))?;
            }
        }
        self.total_slots += branch_count;

        // Apply code relocations.
        let relocs = self.modules[module_idx].module.relocs.clone();
        for r in &relocs {
            self.apply_reloc(module_idx, code_base, r.patch_at, &r.kind, false)?;
        }
        // Fill jump tables with absolute entry addresses.
        let tables_info = self.modules[module_idx].module.aux.jump_tables.clone();
        for t in &tables_info {
            for (i, entry) in t.entries.iter().enumerate() {
                let at = code_base + t.table_offset as u64 + (i as u64) * 8;
                let target = code_base + *entry as u64;
                self.write64_loader(at, target)?;
            }
        }
        // Apply data relocations.
        let data_relocs = self.modules[module_idx].module.data_relocs.clone();
        for r in &data_relocs {
            self.apply_reloc(module_idx, data_base, r.patch_at, &r.kind, true)?;
        }

        // Code pages become executable and non-writable (§6 step 2 end).
        self.mem
            .protect(code_base, Perm::Rx)
            .map_err(|e| LoadError::Mem(e.to_string()))?;

        // Bind GOT entries for any imports this module satisfies. The
        // values are written during the next update transaction (between
        // the Tary and Bary phases), so stash them.
        Ok(())
    }

    fn write64_loader(&mut self, addr: u64, v: u64) -> Result<(), LoadError> {
        self.mem
            .load_image(addr, &v.to_le_bytes())
            .map_err(|e| LoadError::Mem(e.to_string()))
    }

    fn apply_reloc(
        &mut self,
        module_idx: usize,
        base: u64,
        patch_at: usize,
        kind: &RelocKind,
        is_data: bool,
    ) -> Result<(), LoadError> {
        let at = base + patch_at as u64;
        match kind {
            RelocKind::FuncAbs(n) => {
                let addr = self
                    .resolve_func(module_idx, n)
                    .ok_or_else(|| LoadError::Unresolved(n.clone()))?;
                self.write64_loader(at, addr)?;
            }
            RelocKind::GlobalAbs(n) => {
                let addr = self
                    .resolve_global(module_idx, n)
                    .ok_or_else(|| LoadError::Unresolved(n.clone()))?;
                self.write64_loader(at, addr)?;
            }
            RelocKind::CodeAbs(o) => {
                let code_base = self.modules[module_idx].code_base;
                self.write64_loader(at, code_base + o)?;
            }
            RelocKind::JumpTable(i) => {
                let lm = &self.modules[module_idx];
                let t = lm
                    .module
                    .aux
                    .jump_tables
                    .get(*i as usize)
                    .ok_or_else(|| LoadError::Unresolved(format!("jump table {i}")))?;
                let addr = (lm.code_base + t.table_offset as u64) as u32;
                self.mem
                    .load_image(at, &addr.to_le_bytes())
                    .map_err(|e| LoadError::Mem(e.to_string()))?;
            }
            RelocKind::GotSlot(n) => {
                let slot = self.got_slot(n)?;
                self.write64_loader(at, slot)?;
            }
            RelocKind::CallRel(n) => {
                debug_assert!(!is_data, "direct calls cannot live in data");
                let target = match self.resolve_func(module_idx, n) {
                    Some(t) => t,
                    None => self.plt_entry(n)?, // route through the PLT
                };
                let rel = (target as i64 - (at as i64 + 4)) as i32;
                self.mem
                    .load_image(at, &rel.to_le_bytes())
                    .map_err(|e| LoadError::Mem(e.to_string()))?;
            }
        }
        Ok(())
    }

    fn got_slot(&mut self, symbol: &str) -> Result<u64, LoadError> {
        if let Some(&s) = self.got.get(symbol) {
            return Ok(s);
        }
        let slot = self.got_next;
        if slot + 8 > self.opts.layout.data_base + 0x1000 {
            return Err(LoadError::OutOfSpace("GOT"));
        }
        self.got_next += 8;
        self.got.insert(symbol.to_string(), slot);
        Ok(slot)
    }

    /// Synthesizes (or reuses) the MCFI-instrumented PLT entry for an
    /// unresolved import.
    fn plt_entry(&mut self, symbol: &str) -> Result<u64, LoadError> {
        if let Some(&addr) = self.plt.get(symbol) {
            return Ok(addr);
        }
        let got = self.got_slot(symbol)?;
        let stub = build_plt_stub(symbol, got);
        let code_base = self.alloc_code(stub.code.len())?;
        self.mem
            .map(code_base, stub.code.len() as u64, Perm::Rw)
            .map_err(|e| LoadError::Mem(e.to_string()))?;
        self.mem
            .load_image(code_base, &stub.code)
            .map_err(|e| LoadError::Mem(e.to_string()))?;
        // The stub is a one-branch pseudo-module participating in CFG
        // generation like any other module.
        let mut m = Module::new(format!("__plt_{symbol}"));
        m.code = stub.code.clone();
        let mut branch = stub.branch.clone();
        branch.local_slot = 0;
        m.aux.indirect_branches.push(branch);
        if self.total_slots + 1 > self.opts.bary_capacity {
            return Err(LoadError::BaryOverflow);
        }
        let slot = self.total_slots as u32;
        self.total_slots += 1;
        let at = code_base + stub.branch.check_offset as u64 + 2;
        for (k, byte) in slot.to_le_bytes().into_iter().enumerate() {
            self.mem
                .write8(at + k as u64, byte)
                .map_err(|e| LoadError::Mem(e.to_string()))?;
        }
        self.mem
            .protect(code_base, Perm::Rx)
            .map_err(|e| LoadError::Mem(e.to_string()))?;
        self.modules.push(LoadedModule { module: m, code_base, data_base: 0 });
        self.plt.insert(symbol.to_string(), code_base);
        Ok(code_base)
    }

    /// Marks an exported function as address-taken (e.g. after `dlsym`
    /// hands out its address). Returns whether anything changed.
    fn mark_address_taken(&mut self, name: &str) -> bool {
        for lm in &mut self.modules {
            if let Some(f) = lm.module.functions.get_mut(name) {
                if f.size > 0 && !f.is_static && !f.address_taken {
                    f.address_taken = true;
                    return true;
                }
            }
        }
        false
    }

    /// Regenerates the CFG over all loaded modules and runs the update
    /// transaction, adjusting GOT entries between the two table phases.
    fn install_policy(&mut self) {
        let placed: Vec<Placed<'_>> = self
            .modules
            .iter()
            .map(|lm| Placed { module: &lm.module, code_base: lm.code_base })
            .collect();
        let policy: ControlFlowPolicy = generate(&placed);

        // GOT bindings resolvable now.
        let mut got_writes: Vec<(u64, u64)> = Vec::new();
        for (symbol, slot) in &self.got {
            if let Some(addr) = self.symbol(symbol) {
                got_writes.push((*slot, addr));
            }
        }

        let tary = |addr: u64| policy.tary.get(&addr).copied();
        let bary = |slot: usize| policy.bary.get(slot).map(|b| b.ecn);
        let mem = &mut self.mem;
        self.tables.update_with(tary, bary, || {
            for (slot, addr) in &got_writes {
                // Infallible by construction: `validate_layout` pins the
                // GOT area inside the mapped data region and `got_slot`
                // bounds every slot within it. A failure here would be a
                // runtime bug, not hostile input — tolerate it (the slot
                // keeps its previous binding) rather than aborting the
                // host mid-update-transaction.
                let wrote = mem.load_image(*slot, &addr.to_le_bytes()).is_ok();
                debug_assert!(wrote, "GOT slot escaped the mapped data region");
            }
        });
        self.updates += 1;
    }

    /// The current control-flow policy (regenerated on demand, for
    /// statistics and the security metrics).
    pub fn current_policy(&self) -> ControlFlowPolicy {
        let placed: Vec<Placed<'_>> = self
            .modules
            .iter()
            .map(|lm| Placed { module: &lm.module, code_base: lm.code_base })
            .collect();
        generate(&placed)
    }

    /// Prepares a VM positioned at exported function `entry` and resets
    /// the per-run process state.
    fn start_vm(&mut self, entry: &str) -> Result<Vm, LoadError> {
        // A pending restore resumes mid-program: the VM comes back at
        // the checkpointed pc with the checkpointed registers and stats,
        // and the run-visible state (stdout, violations, execve flag)
        // keeps the restored values so the completed run is
        // indistinguishable from one that never failed.
        if let Some(state) = self.pending_resume.take() {
            let mut vm = Vm::new(0);
            vm.restore_state(&state);
            return Ok(vm);
        }
        let pc = self.symbol(entry).ok_or_else(|| LoadError::Unresolved(entry.to_string()))?;
        let mut vm = Vm::new(pc);
        vm.regs[mcfi_machine::Reg::Rsp.index()] = self.opts.layout.stack_top;
        self.stdout.clear();
        self.execve_reached = false;
        self.violations.clear();
        Ok(vm)
    }

    fn finish_run(
        &self,
        outcome: Outcome,
        vm: &Vm,
        start_updates: u64,
        start_tx: TxCounters,
        start_rollbacks: u64,
    ) -> RunResult {
        self.cycles_shared.store(vm.stats.cycles, Ordering::Relaxed);
        let tx = self.tables.tx_counters();
        RunResult {
            outcome,
            stdout: String::from_utf8_lossy(&self.stdout).into_owned(),
            steps: vm.stats.steps,
            cycles: vm.stats.cycles,
            checks: vm.stats.checks,
            indirect_taken: vm.stats.indirect_taken,
            icache_hits: vm.stats.icache_hits,
            icache_misses: vm.stats.icache_misses,
            icache_invalidations: vm.stats.icache_invalidations,
            execve_reached: self.execve_reached,
            updates: self.updates - start_updates,
            check_retries: vm.stats.check_retries,
            tx_retries: tx.retries.saturating_sub(start_tx.retries),
            tx_escalations: tx.escalations.saturating_sub(start_tx.escalations),
            tx_repairs: tx.repairs.saturating_sub(start_tx.repairs),
            audited_violations: self.violations.total(),
            load_rollbacks: self.load_rollbacks - start_rollbacks,
            checkpoints: self.checkpoints_taken,
            restores: self.restores,
            quarantines: self.quarantines,
            admission_rejects: self.admission_rejects,
            tx_lease_repairs: tx.lease_repairs,
            trans_dispatches: vm.stats.trans_dispatches,
            trans_translations: vm.stats.trans_translations,
            trans_retranslations: vm.stats.trans_retranslations,
            trans_deopts: vm.stats.trans_deopts,
            trans_fallbacks: vm.stats.trans_fallbacks,
        }
    }

    /// Runs exported function `entry` (typically `__start`).
    ///
    /// With `predecode` enabled (the default), instruction fetch goes
    /// through the predecode cache; the observable result — outcome,
    /// stdout, steps, cycles, checks — is identical either way.
    ///
    /// # Errors
    ///
    /// Fails if `entry` is not an exported function of a loaded module.
    pub fn run(&mut self, entry: &str) -> Result<RunResult, LoadError> {
        self.run_loop(entry, Driver::Plain)
    }

    /// Runs `entry` under the paper's concurrent-attacker model (§4): the
    /// `attacker` callback fires between consecutive instructions and may
    /// corrupt any writable sandbox memory (it is given the raw backing
    /// store, the registers, and the step count). Registers themselves
    /// are not directly modifiable — exactly the paper's threat model.
    ///
    /// Always runs uncached, since the attacker rewrites raw memory
    /// between steps.
    ///
    /// # Errors
    ///
    /// Fails if `entry` is not an exported function of a loaded module.
    pub fn run_with_attacker(
        &mut self,
        entry: &str,
        mut attacker: impl FnMut(u64, &mut [u8], &[u64; 16]),
    ) -> Result<RunResult, LoadError> {
        self.run_loop(entry, Driver::Attacker(&mut attacker))
    }

    /// Runs `entry` with update transactions scripted at exact simulated
    /// intervals: every `interval` cycles, a version re-stamp performs its
    /// Tary phase, the VM executes `duration` further cycles against the
    /// mixed-version tables (check transactions retry, exactly as in the
    /// paper's Fig. 6 experiment), and then the Bary phase commits.
    ///
    /// Deterministic: the same program yields the same cycle count on any
    /// host, unlike a free-running updater thread.
    ///
    /// # Errors
    ///
    /// Fails if `entry` is not an exported function of a loaded module.
    pub fn run_with_updates(
        &mut self,
        entry: &str,
        interval: u64,
        duration: u64,
    ) -> Result<RunResult, LoadError> {
        self.run_loop(entry, Driver::Scripted { interval, duration })
    }

    /// The single execution loop behind [`Process::run`],
    /// [`Process::run_with_attacker`], and [`Process::run_with_updates`];
    /// the `driver` supplies whatever happens between instructions.
    fn run_loop(&mut self, entry: &str, mut driver: Driver<'_>) -> Result<RunResult, LoadError> {
        let mut vm = self.start_vm(entry)?;
        let start_updates = self.updates;
        let start_rollbacks = self.load_rollbacks;
        let start_tx = self.tables.tx_counters();

        // Table version churn never touches code bytes, so the predecode
        // cache stays valid under scripted updates; only the attacker
        // (who rewrites raw memory between steps) forces uncached runs.
        let cached = self.opts.predecode && !matches!(driver, Driver::Attacker(_));
        // The translated tier memoises decoded code the same way, with
        // the same attacker exception; it deoptimizes on any sandbox
        // generation bump (dlopen, chaos) back to the interpreter.
        let translated = self.opts.translate && !matches!(driver, Driver::Attacker(_));

        // A checkpoint restore hands `start_vm` the stats of the run
        // that *captured* it — including cache/tier counters a
        // differently-configured resumption never touches. Zero whatever
        // this run's configuration cannot produce, so an uncached run
        // reports 0 hits/misses instead of a stale snapshot.
        if !cached {
            vm.stats.icache_hits = 0;
            vm.stats.icache_misses = 0;
            vm.stats.icache_invalidations = 0;
        }
        if !translated {
            vm.stats.trans_dispatches = 0;
            vm.stats.trans_translations = 0;
            vm.stats.trans_retranslations = 0;
            vm.stats.trans_deopts = 0;
            vm.stats.trans_fallbacks = 0;
        }

        let tables = Arc::clone(&self.tables);
        let mut in_flight: Option<mcfi_tables::SplitBump<'_>> = None;
        let mut next_update = match driver {
            Driver::Scripted { interval, .. } => interval,
            _ => 0,
        };
        let mut commit_at = 0u64;
        let cp_interval = self.opts.checkpoint_interval;
        let mut next_checkpoint = vm.stats.steps.saturating_add(cp_interval);
        // Publication epoch for `cycles_shared` (steps / 1024). Epoch
        // comparison rather than `is_multiple_of`, because translated
        // blocks advance `steps` by more than one and would otherwise
        // skip over the exact multiples.
        let mut pub_epoch = u64::MAX;

        let outcome = loop {
            if vm.stats.steps >= self.opts.max_steps {
                break Outcome::StepLimit;
            }
            if cp_interval > 0 && vm.stats.steps >= next_checkpoint {
                let cp = self.capture_checkpoint(Some(&vm));
                self.push_checkpoint(cp);
                next_checkpoint = vm.stats.steps.saturating_add(cp_interval);
            }
            match &mut driver {
                Driver::Plain => {}
                Driver::Attacker(attacker) => {
                    attacker(vm.stats.steps, self.mem.raw_mut(), &vm.regs);
                }
                Driver::Scripted { interval, duration } => {
                    if in_flight.is_some() {
                        if vm.stats.cycles >= commit_at {
                            in_flight.take().expect("checked is_some").finish();
                            self.updates += 1;
                            next_update += *interval;
                        }
                    } else if vm.stats.cycles >= next_update {
                        in_flight = Some(tables.bump_version_split());
                        commit_at = vm.stats.cycles + *duration;
                    }
                }
            }
            let epoch = vm.stats.steps >> 10;
            if epoch != pub_epoch {
                pub_epoch = epoch;
                self.cycles_shared.store(vm.stats.cycles, Ordering::Relaxed);
            }
            let stepped = if translated {
                // The chaos point that forces a mid-run deopt with no
                // loader activity (`trans-invalidate`).
                if self.chaos_fire(FaultPoint::TransInvalidate).is_some() {
                    self.trans.force_deopt();
                }
                // Ceilings that keep every loop-top decision above on
                // its exact instruction boundary: a block may finish
                // *on* a threshold (the next loop-top acts, exactly as
                // the interpreter's would) but never cross one.
                let step_limit = if cp_interval > 0 {
                    self.opts.max_steps.min(next_checkpoint)
                } else {
                    self.opts.max_steps
                };
                let cycle_limit = match &driver {
                    Driver::Scripted { .. } => {
                        if in_flight.is_some() {
                            commit_at
                        } else {
                            next_update
                        }
                    }
                    _ => u64::MAX,
                };
                match self.trans.dispatch(&mut vm, &mut self.mem, &tables, step_limit, cycle_limit)
                {
                    Ok(Dispatch::Ran(ev)) => Ok(ev),
                    // The fallback ladder: translated → step_cached →
                    // step. A dispatch that could not run a block takes
                    // exactly one interpreter step, so the loop always
                    // makes progress.
                    Ok(Dispatch::Interp) => {
                        if cached {
                            vm.step_cached(&mut self.mem, &self.tables, &mut self.icache)
                        } else {
                            vm.step(&mut self.mem, &self.tables)
                        }
                    }
                    Err(e) => Err(e),
                }
            } else if cached {
                vm.step_cached(&mut self.mem, &self.tables, &mut self.icache)
            } else {
                vm.step(&mut self.mem, &self.tables)
            };
            match stepped {
                Ok(Event::Continue) => {}
                Ok(Event::Halt { pc }) => {
                    match self.opts.violation_policy {
                        ViolationPolicy::Audit => {
                            if let Some(resume) = self.audit_resume(&mut vm, pc) {
                                vm.pc = resume;
                                continue;
                            }
                        }
                        ViolationPolicy::Recover => {
                            // Record the violation like an audit would —
                            // the supervisor reads the log to attribute
                            // the halt to a module — but do not resume:
                            // `Recover` halts exactly like `Enforce`.
                            let _ = self.audit_resume(&mut vm, pc);
                        }
                        ViolationPolicy::Enforce => {}
                    }
                    break Outcome::CfiViolation { pc };
                }
                Ok(Event::Syscall) => match self.syscall(&mut vm) {
                    SysOutcome::Continue => {}
                    SysOutcome::Exit(code) => break Outcome::Exit { code },
                    SysOutcome::Fault(kind) => break Outcome::Fault(kind),
                },
                Err(e) => break vm_outcome(e),
            }
        };
        if let Some(b) = in_flight.take() {
            b.finish();
            self.updates += 1;
        }
        Ok(self.finish_run(outcome, &vm, start_updates, start_tx, start_rollbacks))
    }

    /// Handles a check-transaction `hlt` under [`ViolationPolicy::Audit`]:
    /// records the violation and returns the address of the branch's
    /// success-path `CallReg`/`JmpReg` so the run loop can resume there —
    /// the branch then executes for real (return address pushed, target
    /// still in the register), exactly as if the check had passed.
    /// Returns `None` — halt anyway — when the `hlt` did not come from a
    /// check sequence (a stray halt is not a policy decision).
    fn audit_resume(&mut self, vm: &mut Vm, pc: u64) -> Option<u64> {
        let (bary_slot, target) = vm.take_last_check()?;
        let resume = self.branch_addr_for_slot(bary_slot)?;
        // Diagnose the failure from the live tables. A bounded re-check
        // can disagree with the guest's verdict (a concurrent update may
        // have settled the skew since); record `kind: None` then.
        let kind = match self.tables.check_bounded(bary_slot, target, &RetryConfig::default()) {
            Err(CheckError::Violation(v)) => Some(v.kind),
            _ => None,
        };
        self.violations.push(ViolationRecord { pc, bary_slot, target, kind });
        Some(resume)
    }

    /// The absolute address of the raw branch instruction behind global
    /// Bary slot `bary_slot` (slots are assigned sequentially in module
    /// load order).
    fn branch_addr_for_slot(&self, bary_slot: usize) -> Option<u64> {
        let mut base = 0usize;
        for lm in &self.modules {
            let branches = &lm.module.aux.indirect_branches;
            if bary_slot < base + branches.len() {
                let b = &branches[bary_slot - base];
                return Some(lm.code_base + b.branch_offset as u64);
            }
            base += branches.len();
        }
        None
    }

    fn syscall(&mut self, vm: &mut Vm) -> SysOutcome {
        use mcfi_machine::Reg;
        let num = vm.regs[Reg::Rax.nibble() as usize];
        let a = vm.regs[Reg::R8.nibble() as usize];
        let b = vm.regs[Reg::R9.nibble() as usize];
        let c = vm.regs[Reg::R10.nibble() as usize];
        let ret = if num == Sys::Exit as u64 {
            return SysOutcome::Exit(a as i64);
        } else if num == Sys::Write as u64 {
            if a == 1 {
                for i in 0..c {
                    match self.mem.read8(b + i) {
                        Ok(byte) => self.stdout.push(byte),
                        Err(e) => return SysOutcome::Fault(FaultKind::SysMem(e)),
                    }
                }
                c
            } else {
                u64::MAX // only stdout exists
            }
        } else if num == Sys::Sbrk as u64 {
            let delta = a as i64;
            let new = self.brk.wrapping_add(delta as u64);
            if new > self.opts.layout.heap_limit || new < self.opts.layout.heap_base {
                0
            } else {
                let old = self.brk;
                self.brk = new;
                old
            }
        } else if num == Sys::Mmap as u64 {
            // Interposition check: "the newly mapped memory cannot be both
            // writable and executable" (§7). Prot bits: 1=R 2=W 4=X.
            let prot = b;
            if prot & 0x2 != 0 && prot & 0x4 != 0 {
                u64::MAX // refused: W^X
            } else {
                // Only plain RW anonymous mappings are provided, carved
                // from the heap like sbrk.
                let len = (a + 4095) & !4095;
                let new = self.brk + len;
                if new > self.opts.layout.heap_limit {
                    u64::MAX
                } else {
                    let old = self.brk;
                    self.brk = new;
                    old
                }
            }
        } else if num == Sys::Mprotect as u64 {
            // A similar restriction is placed on mprotect (§7): requests
            // that would make memory writable and executable are refused.
            let prot = b;
            if prot & 0x2 != 0 && prot & 0x4 != 0 {
                u64::MAX
            } else {
                0
            }
        } else if num == Sys::Dlopen as u64 {
            match self.mem.read_cstr(a) {
                Ok(name) => match self.registry.get(&name).cloned() {
                    // A failed load has already been rolled back; the
                    // library stays registered for a later retry, dlopen
                    // reports failure to the guest, and the process keeps
                    // running under its pre-load CFG. Under quarantine, a
                    // banned or backing-off library is refused before the
                    // load is even attempted.
                    Some(entry) => {
                        let now = vm.stats.cycles;
                        if self.quarantine_denied(&name, now) {
                            self.quarantine_denials += 1;
                            0
                        } else {
                            let result = match entry {
                                LibraryEntry::Decoded(module) => self.load(*module),
                                LibraryEntry::Image(bytes) => self.load_image(bytes),
                            };
                            match result {
                                Ok(()) => {
                                    self.note_load_success(&name);
                                    self.registry.remove(&name);
                                    1
                                }
                                Err(e) => {
                                    self.note_load_failure(&name, now, &e);
                                    0
                                }
                            }
                        }
                    }
                    None => 0,
                },
                Err(e) => return SysOutcome::Fault(FaultKind::SysMem(e)),
            }
        } else if num == Sys::Dlsym as u64 {
            match self.mem.read_cstr(a) {
                Ok(name) => match self.symbol(&name) {
                    Some(addr) => {
                        // Handing out a function's address makes it an
                        // indirect-call target: mark it address-taken and
                        // install the (possibly) widened CFG with a fresh
                        // update transaction.
                        if self.mark_address_taken(&name) {
                            self.install_policy();
                        }
                        addr
                    }
                    None => 0,
                },
                Err(e) => return SysOutcome::Fault(FaultKind::SysMem(e)),
            }
        } else if num == Sys::Cycles as u64 {
            vm.stats.cycles
        } else if num == Sys::Execve as u64 {
            // The dangerous syscall of the GnuPG case study: the runtime
            // records that control reached it, then refuses.
            self.execve_reached = true;
            u64::MAX
        } else {
            return SysOutcome::Fault(FaultKind::UnknownSyscall(num));
        };
        vm.regs[Reg::Rax.nibble() as usize] = ret;
        SysOutcome::Continue
    }
}

/// A §4 concurrent attacker: gets the pc, writable memory, and the
/// register file between consecutive instructions.
type AttackerFn<'a> = dyn FnMut(u64, &mut [u8], &[u64; 16]) + 'a;

/// What happens between consecutive instructions of the unified run
/// loop (see [`Process::run_loop`]).
enum Driver<'a> {
    /// Nothing: plain execution.
    Plain,
    /// The §4 concurrent attacker mutates writable memory between steps.
    Attacker(&'a mut AttackerFn<'a>),
    /// Scripted split update transactions at exact cycle intervals.
    Scripted {
        /// Cycles between the starts of consecutive updates.
        interval: u64,
        /// Cycles each update's mixed-version window stays open.
        duration: u64,
    },
}

enum SysOutcome {
    Continue,
    Exit(i64),
    Fault(FaultKind),
}
