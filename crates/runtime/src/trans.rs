//! The baseline-compiled execution tier: superblock translation with
//! per-site-specialized TxChecks.
//!
//! The predecode cache ([`crate::icache`]) removes the fetch taxes —
//! `check_exec` and the variable-length decode — but still dispatches
//! one instruction per run-loop iteration, paying the loop-top
//! bookkeeping (step budget, checkpoint cadence, driver hooks, event
//! match) on every step. This module lowers whole basic *superblocks*
//! into a compact op stream executed by a tight internal loop:
//!
//! - **Straight-line ops** run through stripped executor arms that
//!   accumulate step/cycle charges in locals (flushed at block exits)
//!   and never touch `vm.pc` until the block ends or faults.
//! - **Direct control flow** (`Jmp`/`Jcc`/`Call`) is chained through:
//!   translation continues at the statically known continuation, and at
//!   run time a divergence check (did the executed branch follow the
//!   chained edge?) ends the block early with `vm.pc` already correct.
//! - **The Fig. 4 check transaction** is recognized as a unit
//!   (`BaryLoad; TaryLoad; Cmp; Jcc Ne; [Nops]; CallReg|JmpReg`) and
//!   specialized per indirect-branch site into a [`TxCheckOp`]: the
//!   Bary slot, the success-path branch address, and the expected Bary
//!   word are baked in. The fast path performs one atomic Bary read and
//!   one atomic Tary read against the *live* shared tables — exactly
//!   the two loads the instrumented sequence performs — and on
//!   `bary == tary` replays the architectural effects of all five-plus
//!   instructions at once. A miss executes *nothing* and falls back to
//!   single-step interpretation, which runs the full slow path
//!   (`TestImm`/`Cmp16` validity-and-version diagnosis, the retry loop,
//!   ultimately `check_bounded`-equivalent behavior or the `Hlt`).
//!
//! # Invalidation: deopt on generation bump
//!
//! Translated blocks memoise decoded bytes, so they ride the same
//! correctness argument as the predecode cache: every code-byte
//! mutation funnels through `Sandbox::{map, protect, load_image,
//! raw_mut}`, each of which bumps the sandbox generation. The
//! dispatcher compares its build generation on every entry; a mismatch
//! *deoptimizes* — all blocks are discarded, execution falls back to
//! `step_cached`, and retranslation happens lazily (and is counted as
//! such) the next time a pc gets hot. The `trans-invalidate` chaos
//! point forces this mid-run without any loader activity.
//!
//! # Interpreter equivalence
//!
//! The tier must be architecturally invisible; the differential suite
//! (`tests/differential.rs`) holds it to byte-identical results. Three
//! properties carry the proof:
//!
//! 1. **Per-op equivalence**: straight-line ops are verbatim copies of
//!    the interpreter arms; chained/terminal ops call the real
//!    [`Vm::execute`]. The TxCheck fast path fires only when
//!    `bary_word == tary_word`, in which case the interpreted sequence
//!    provably takes the success path with exactly the replayed
//!    register/flag/statistic effects (`Cmp` equal ⇒ `flags = 0`,
//!    equal words ⇒ equal versions ⇒ no `check_retries` increment).
//! 2. **Boundary preservation**: a block is dispatched only if its
//!    *worst-case* step and cycle totals stay within the caller's
//!    limits, so every loop-top decision the interpreter would make at
//!    an interior step (step budget, checkpoint capture, scripted
//!    update windows) still happens at the identical instruction
//!    boundary — interior boundaries stay strictly below every
//!    threshold because all translated ops cost at least one step and
//!    one cycle (`Hlt`, the one zero-cost instruction, is never
//!    translated into a block).
//! 3. **Fault equivalence**: charges are applied before effects, ops
//!    record their own pc, and a faulting op restores `vm.pc` to it —
//!    so a mid-block fault leaves the machine exactly where the
//!    interpreter's would.
//!
//! The fallback ladder is translated → `step_cached` → `step`: every
//! dispatch that cannot run a block (untranslatable pc, limit
//! proximity, TxCheck miss) executes at least one interpreter step, so
//! the run loop always makes progress.

use std::cell::Cell;

use mcfi_machine::{cost_of, decode, Cond, Inst, Reg};
use mcfi_tables::IdTables;

use crate::mem::Sandbox;
use crate::vm::{Event, Vm, VmError};

/// Translation stops after this many ops; loops unroll up to the cap.
const MAX_BLOCK_OPS: usize = 256;

/// Index sentinel: pc not translated yet.
const EMPTY: u32 = u32::MAX;
/// Index sentinel: translation at this pc produced nothing (e.g. the pc
/// starts at a `Hlt` or undecodable bytes); permanently interpreted.
const UNTRANSLATABLE: u32 = u32::MAX - 1;

/// The Fig. 4 check transaction, specialized for one indirect-branch
/// site: slot id, expected Bary word, and success-path branch target
/// baked in at translation time.
struct TxCheckOp {
    /// Global Bary slot of the branch (the patched `BaryLoad` immediate).
    slot: u32,
    /// Register file index the `BaryLoad` writes (`%rdi` by convention).
    bary_dst: usize,
    /// Register file index the `TaryLoad` writes (`%rsi` by convention).
    tary_dst: usize,
    /// Register file index holding the branch target (`%rcx`).
    target: usize,
    /// `CallReg` (pushes a return address) vs `JmpReg`.
    is_call: bool,
    /// pc of the `BaryLoad` — where a miss resumes interpretation.
    check_pc: u64,
    /// pc of the success-path `CallReg`/`JmpReg`.
    branch_pc: u64,
    /// Byte length of the branch instruction (return address =
    /// `branch_pc + branch_len`).
    branch_len: u64,
    /// Steps the fast path replays (5 + alignment Nops).
    fast_steps: u64,
    /// Cycles the fast path replays (sum of the sequence's costs).
    fast_cycles: u64,
    /// The Bary word observed at translation time. Self-healing: a
    /// version re-stamp leaves it stale, and the next fast-path hit
    /// (which compares *live* table words) rewrites it. Purely a
    /// specialization record — correctness never reads it alone.
    expected: Cell<u32>,
}

/// One translated operation.
enum OpKind {
    /// A straight-line instruction: executed by the stripped arms in
    /// [`exec_straight`], charges accumulated locally.
    Straight(Inst),
    /// A direct jump chained through at translation time: the block
    /// simply continues at the static target, so only the cycle charge
    /// remains at run time.
    Jmp,
    /// A conditional jump whose fall-through edge is chained: a taken
    /// branch exits the block with `vm.pc = taken`, otherwise only the
    /// charge remains.
    Jcc {
        /// The branch condition.
        cc: Cond,
        /// The (divergent) taken-branch target.
        taken: u64,
    },
    /// A direct call chained into its callee: pushes the static return
    /// address and continues.
    Call {
        /// The return address (pc after the call instruction).
        ret: u64,
    },
    /// A block terminator with a dynamic or external continuation
    /// (`CallReg`/`JmpReg`/`JmpTable`/`Ret`/`Syscall`), executed by the
    /// real interpreter arm; its event ends the block.
    Term {
        /// The terminal instruction.
        inst: Inst,
        /// Its encoded length.
        len: u64,
    },
    /// A specialized check transaction (always the last op).
    Check(TxCheckOp),
}

struct Op {
    /// The instruction's own pc (restored on fault; base for `Flow`).
    pc: u64,
    /// Its cycle cost (pre-computed at translation time).
    cost: u64,
    kind: OpKind,
}

/// A translated superblock.
struct Block {
    ops: Box<[Op]>,
    /// Worst-case steps a full execution charges (each op's steps; the
    /// check op counts its whole fast path).
    total_steps: u64,
    /// Worst-case cycles, likewise.
    total_cycles: u64,
    /// pc after the last op when the block runs to completion without a
    /// terminator (translation hit the op cap or the segment edge).
    fallthrough: u64,
}

/// The per-segment block index: `index[pc - start]` is a slot into
/// [`TransCache::blocks`], or a sentinel.
struct TransSegment {
    start: u64,
    end: u64,
    index: Vec<u32>,
}

impl TransSegment {
    fn contains(&self, pc: u64) -> bool {
        self.start <= pc && pc < self.end
    }
}

/// What a dispatch produced.
pub(crate) enum Dispatch {
    /// No block ran (or a TxCheck fast path missed with nothing
    /// executed): the caller **must** take exactly one interpreter step
    /// before re-dispatching, so the loop always makes progress.
    Interp,
    /// A block ran to `Event` with `vm.pc` already correct.
    Ran(Event),
}

/// The translated-block cache of the baseline-compiled tier (see the
/// module docs). One per process, surviving across runs like the
/// predecode cache; any sandbox generation bump deoptimizes it whole.
pub struct TransCache {
    /// Sandbox generation the blocks were translated against.
    /// `u64::MAX` is unreachable by the sandbox (generations start at 0
    /// and increment), so a fresh — or force-deopted — cache always
    /// rebuilds on the next dispatch.
    generation: u64,
    segments: Vec<TransSegment>,
    blocks: Vec<Block>,
    /// Segment that served the last dispatch (hot-loop short-circuit).
    last_segment: usize,
    /// Whether a deopt ever retired live blocks — after which new
    /// translations count as *re*translations.
    deopted_once: bool,
}

impl Default for TransCache {
    fn default() -> Self {
        TransCache::new()
    }
}

impl TransCache {
    /// An empty cache; the first dispatch builds the segment index.
    pub fn new() -> Self {
        TransCache {
            generation: u64::MAX,
            segments: Vec::new(),
            blocks: Vec::new(),
            last_segment: 0,
            deopted_once: false,
        }
    }

    /// Force-deoptimizes: the next dispatch discards every translated
    /// block and lazily retranslates, exactly as if the sandbox
    /// generation had been bumped. The `trans-invalidate` chaos point
    /// calls this mid-run.
    pub(crate) fn force_deopt(&mut self) {
        self.generation = u64::MAX;
    }

    /// Runs translated blocks starting at `vm.pc`, chaining from one
    /// block into the next (translating lazily at fresh pcs) for as
    /// long as each block's *worst-case* charges fit under
    /// `step_limit`/`cycle_limit` — both *inclusive* ceilings the
    /// post-block totals may reach but not cross.
    ///
    /// Chaining is exact because every run-loop action between
    /// instructions is threshold-triggered: strictly below the
    /// ceilings, the loop-top is a no-op, so skipping it between
    /// chained blocks is unobservable. The chain breaks — returning
    /// `Ran(Continue)` so the caller's loop-top runs — as soon as the
    /// next block might reach a ceiling, or has no translation.
    ///
    /// # Errors
    ///
    /// Exactly the [`VmError`]s the interpreter would raise at the same
    /// instruction, with identical machine state.
    pub(crate) fn dispatch(
        &mut self,
        vm: &mut Vm,
        mem: &mut Sandbox,
        tables: &IdTables,
        step_limit: u64,
        cycle_limit: u64,
    ) -> Result<Dispatch, VmError> {
        if self.generation != mem.generation() {
            self.deopt_and_rebuild(mem, vm);
        }
        let mut chained = false;
        loop {
            let pc = vm.pc;
            let Some(si) = self.segment_index(pc) else {
                return Ok(self.chain_break(vm, chained));
            };
            self.last_segment = si;
            let off = (pc - self.segments[si].start) as usize;
            let mut bi = self.segments[si].index[off];
            if bi == EMPTY {
                let (start, end) = (self.segments[si].start, self.segments[si].end);
                let block = translate(mem, tables, start, end, pc);
                if block.ops.is_empty() {
                    self.segments[si].index[off] = UNTRANSLATABLE;
                    return Ok(self.chain_break(vm, chained));
                }
                vm.stats.trans_translations += 1;
                if self.deopted_once {
                    vm.stats.trans_retranslations += 1;
                }
                bi = self.blocks.len() as u32;
                self.blocks.push(block);
                self.segments[si].index[off] = bi;
            }
            if bi == UNTRANSLATABLE {
                return Ok(self.chain_break(vm, chained));
            }
            let block = &self.blocks[bi as usize];
            if vm.stats.steps.saturating_add(block.total_steps) > step_limit
                || vm.stats.cycles.saturating_add(block.total_cycles) > cycle_limit
            {
                return Ok(self.chain_break(vm, chained));
            }
            vm.stats.trans_dispatches += 1;
            match run_block(block, vm, mem, tables)? {
                Dispatch::Ran(Event::Continue) => chained = true,
                done => return Ok(done),
            }
        }
    }

    /// Ends a dispatch that cannot run a block at `vm.pc`. Mid-chain,
    /// control goes back to the caller's loop-top as a completed
    /// dispatch; on a cold entry it falls back to one interpreter step.
    fn chain_break(&self, vm: &mut Vm, chained: bool) -> Dispatch {
        if chained {
            Dispatch::Ran(Event::Continue)
        } else {
            vm.stats.trans_fallbacks += 1;
            Dispatch::Interp
        }
    }

    fn segment_index(&self, pc: u64) -> Option<usize> {
        if let Some(seg) = self.segments.get(self.last_segment) {
            if seg.contains(pc) {
                return Some(self.last_segment);
            }
        }
        self.segments.iter().position(|s| s.contains(pc))
    }

    /// Discards every block (counting a deopt if any were live) and
    /// rebuilds the segment index from the current executable regions.
    fn deopt_and_rebuild(&mut self, mem: &Sandbox, vm: &mut Vm) {
        if !self.blocks.is_empty() {
            vm.stats.trans_deopts += 1;
            self.deopted_once = true;
            self.blocks.clear();
        }
        self.segments.clear();
        self.last_segment = 0;
        for r in mem.regions().iter().filter(|r| r.perm.executable()) {
            self.segments.push(TransSegment {
                start: r.start,
                end: r.end,
                index: vec![EMPTY; (r.end - r.start) as usize],
            });
        }
        self.generation = mem.generation();
    }
}

/// Lowers the superblock starting at `entry` within `[seg_start,
/// seg_end)`. Direct branches chain; the walk stops at a terminator, a
/// specialized check, the op cap, a decode failure, a `Hlt` (never
/// translated — see the module docs), or bytes spilling past the
/// segment (parity with the predecode cache's spill rule, since the
/// tail might be mutable data). An empty result marks the pc
/// untranslatable.
fn translate(mem: &Sandbox, tables: &IdTables, seg_start: u64, seg_end: u64, entry: u64) -> Block {
    let bytes = mem.raw();
    let mut ops: Vec<Op> = Vec::new();
    let mut total_steps = 0u64;
    let mut total_cycles = 0u64;
    let mut pc = entry;
    while ops.len() < MAX_BLOCK_OPS && pc >= seg_start && pc < seg_end {
        let Ok((inst, ilen)) = decode(bytes, pc as usize) else { break };
        let len = ilen as u64;
        if pc + len > seg_end {
            break;
        }
        let cost = cost_of(&inst);
        match inst {
            Inst::BaryLoad { dst, slot } => {
                if let Some(chk) = match_check(bytes, seg_end, pc, len, dst, slot, tables) {
                    total_steps += chk.fast_steps;
                    total_cycles += chk.fast_cycles;
                    ops.push(Op { pc, cost, kind: OpKind::Check(chk) });
                    return Block {
                        ops: ops.into_boxed_slice(),
                        total_steps,
                        total_cycles,
                        fallthrough: 0,
                    };
                }
                total_steps += 1;
                total_cycles += cost;
                ops.push(Op { pc, cost, kind: OpKind::Straight(inst) });
                pc += len;
            }
            Inst::Jmp { rel } => {
                total_steps += 1;
                total_cycles += cost;
                ops.push(Op { pc, cost, kind: OpKind::Jmp });
                pc = (pc + len).wrapping_add(rel as i64 as u64);
            }
            Inst::Jcc { cc, rel } => {
                // Chain the fall-through edge; a taken branch exits.
                let taken = (pc + len).wrapping_add(rel as i64 as u64);
                total_steps += 1;
                total_cycles += cost;
                ops.push(Op { pc, cost, kind: OpKind::Jcc { cc, taken } });
                pc += len;
            }
            Inst::Call { rel } => {
                total_steps += 1;
                total_cycles += cost;
                ops.push(Op { pc, cost, kind: OpKind::Call { ret: pc + len } });
                pc = (pc + len).wrapping_add(rel as i64 as u64);
            }
            Inst::CallReg { .. }
            | Inst::JmpReg { .. }
            | Inst::JmpTable { .. }
            | Inst::Ret
            | Inst::Syscall => {
                total_steps += 1;
                total_cycles += cost;
                ops.push(Op { pc, cost, kind: OpKind::Term { inst, len } });
                return Block {
                    ops: ops.into_boxed_slice(),
                    total_steps,
                    total_cycles,
                    fallthrough: 0,
                };
            }
            // Never translated: `Hlt` costs zero cycles, which would
            // let a block's interior boundary sit exactly *on* a cycle
            // threshold the interpreter acts at (see the module docs).
            // The single-step fallback executes it identically.
            Inst::Hlt => break,
            _ => {
                total_steps += 1;
                total_cycles += cost;
                ops.push(Op { pc, cost, kind: OpKind::Straight(inst) });
                pc += len;
            }
        }
    }
    Block { ops: ops.into_boxed_slice(), total_steps, total_cycles, fallthrough: pc }
}

/// Decodes the instruction at `pc` if it lies — bytes included — within
/// the segment.
fn decode_within(bytes: &[u8], pc: u64, seg_end: u64) -> Option<(Inst, u64)> {
    if pc >= seg_end {
        return None;
    }
    let (inst, len) = decode(bytes, pc as usize).ok()?;
    let len = len as u64;
    (pc + len <= seg_end).then_some((inst, len))
}

/// Recognizes the Fig. 4 fast-path sequence starting at a `BaryLoad`:
///
/// ```text
/// BaryLoad d1, slot ; TaryLoad d2, t ; Cmp d1, d2 ; Jcc Ne, slow ;
/// [Nop ×0..4 (call alignment)] ; CallReg t | JmpReg t
/// ```
///
/// with `d1`, `d2`, `t` pairwise distinct (so the replayed register
/// writes commute with the target read). Returns `None` — the sequence
/// translates as plain ops — on any mismatch.
fn match_check(
    bytes: &[u8],
    seg_end: u64,
    bary_pc: u64,
    bary_len: u64,
    bary_dst: Reg,
    slot: u32,
    tables: &IdTables,
) -> Option<TxCheckOp> {
    let mut steps = 1u64;
    let mut cycles = cost_of(&Inst::BaryLoad { dst: bary_dst, slot });
    let mut at = bary_pc + bary_len;

    let (inst, len) = decode_within(bytes, at, seg_end)?;
    let Inst::TaryLoad { dst: tary_dst, addr: target } = inst else { return None };
    if tary_dst == bary_dst || target == bary_dst || target == tary_dst {
        return None;
    }
    steps += 1;
    cycles += cost_of(&inst);
    at += len;

    let (inst, len) = decode_within(bytes, at, seg_end)?;
    let Inst::Cmp { a, b } = inst else { return None };
    if a != bary_dst || b != tary_dst {
        return None;
    }
    steps += 1;
    cycles += cost_of(&inst);
    at += len;

    let (inst, len) = decode_within(bytes, at, seg_end)?;
    let Inst::Jcc { cc: Cond::Ne, .. } = inst else { return None };
    steps += 1;
    cycles += cost_of(&inst);
    at += len;

    // Up to TARGET_ALIGN - 1 alignment Nops pad a call so its *end*
    // lands on an aligned (legal return-target) address.
    let mut nops = 0;
    loop {
        let (inst, len) = decode_within(bytes, at, seg_end)?;
        match inst {
            Inst::Nop if nops < 3 => {
                nops += 1;
                steps += 1;
                cycles += cost_of(&inst);
                at += len;
            }
            Inst::CallReg { reg } if reg == target => {
                steps += 1;
                cycles += cost_of(&inst);
                return Some(check_op(bary_pc, at, len, true, slot, bary_dst, tary_dst, target, steps, cycles, tables));
            }
            Inst::JmpReg { reg } if reg == target => {
                steps += 1;
                cycles += cost_of(&inst);
                return Some(check_op(bary_pc, at, len, false, slot, bary_dst, tary_dst, target, steps, cycles, tables));
            }
            _ => return None,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_op(
    check_pc: u64,
    branch_pc: u64,
    branch_len: u64,
    is_call: bool,
    slot: u32,
    bary_dst: Reg,
    tary_dst: Reg,
    target: Reg,
    fast_steps: u64,
    fast_cycles: u64,
    tables: &IdTables,
) -> TxCheckOp {
    TxCheckOp {
        slot,
        bary_dst: bary_dst.nibble() as usize,
        tary_dst: tary_dst.nibble() as usize,
        target: target.nibble() as usize,
        is_call,
        check_pc,
        branch_pc,
        branch_len,
        fast_steps,
        fast_cycles,
        expected: Cell::new(tables.bary_word(slot as usize)),
    }
}

/// Executes `block` against the machine. Precondition (enforced by
/// [`TransCache::dispatch`]): the block's worst-case charges fit under
/// the caller's step/cycle limits.
fn run_block(
    block: &Block,
    vm: &mut Vm,
    mem: &mut Sandbox,
    tables: &IdTables,
) -> Result<Dispatch, VmError> {
    // Step/cycle charges accumulate in locals and flush at every exit
    // (including faults), so interior ops pay no memory traffic for
    // statistics. `vm.pc` is likewise only maintained at exits.
    let mut dsteps = 0u64;
    let mut dcycles = 0u64;
    macro_rules! flush {
        () => {
            vm.stats.steps += dsteps;
            vm.stats.cycles += dcycles;
        };
    }
    for op in &block.ops {
        match &op.kind {
            OpKind::Straight(inst) => {
                // Charges apply before effects, exactly like the
                // interpreter's `execute`.
                dsteps += 1;
                dcycles += op.cost;
                if let Err(e) = exec_straight(vm, mem, tables, inst, op.pc) {
                    vm.pc = op.pc;
                    flush!();
                    return Err(e);
                }
            }
            OpKind::Jmp => {
                // The target is chained statically; only the charge
                // remains.
                dsteps += 1;
                dcycles += op.cost;
            }
            OpKind::Jcc { cc, taken } => {
                dsteps += 1;
                dcycles += op.cost;
                if vm.cond(*cc) {
                    // Divergence from the chained fall-through edge:
                    // exit the block at the taken target.
                    flush!();
                    vm.pc = *taken;
                    return Ok(Dispatch::Ran(Event::Continue));
                }
            }
            OpKind::Call { ret } => {
                // Charges apply before the push, matching `execute`;
                // the callee is chained statically.
                dsteps += 1;
                dcycles += op.cost;
                if let Err(e) = vm.push(mem, *ret) {
                    vm.pc = op.pc;
                    flush!();
                    return Err(e);
                }
            }
            OpKind::Term { inst, len } => {
                flush!();
                vm.pc = op.pc;
                let ev = vm.execute(mem, tables, *inst, *len, op.cost)?;
                return Ok(Dispatch::Ran(ev));
            }
            OpKind::Check(chk) => {
                flush!();
                return run_check(chk, vm, mem, tables);
            }
        }
    }
    flush!();
    vm.pc = block.fallthrough;
    Ok(Dispatch::Ran(Event::Continue))
}

/// The specialized TxCheck fast path. One live Bary read, one live Tary
/// read; on `bary == tary` the whole instrumented sequence provably
/// takes its success path, so its architectural effects are replayed in
/// one go. On a miss **nothing** has executed: the caller resumes
/// single-step interpretation at the `BaryLoad`, which runs the full
/// slow path (validity test, version comparison, retry loop, `Hlt`).
fn run_check(
    chk: &TxCheckOp,
    vm: &mut Vm,
    mem: &mut Sandbox,
    tables: &IdTables,
) -> Result<Dispatch, VmError> {
    let bary = tables.bary_word(chk.slot as usize);
    let target = vm.regs[chk.target];
    let tary = tables.tary_word(target);
    if bary != tary {
        vm.pc = chk.check_pc;
        vm.stats.trans_fallbacks += 1;
        return Ok(Dispatch::Interp);
    }
    // Heal the baked expectation after version re-stamps.
    if chk.expected.get() != bary {
        chk.expected.set(bary);
    }
    // Replay the sequence: BaryLoad, TaryLoad (checks += 1; equal words
    // mean equal versions, so no retry is counted), Cmp (equal ⇒ flags
    // = 0), Jcc Ne (not taken), Nops, then the branch itself.
    vm.stats.steps += chk.fast_steps;
    vm.stats.cycles += chk.fast_cycles;
    vm.stats.checks += 1;
    vm.regs[chk.bary_dst] = u64::from(bary);
    vm.regs[chk.tary_dst] = u64::from(tary);
    vm.flags = 0;
    vm.last_bary = Some(chk.slot as usize);
    vm.last_check = Some((chk.slot as usize, target));
    vm.pc = chk.branch_pc;
    if chk.is_call {
        // A push fault leaves the machine exactly as the interpreter's
        // would at the `CallReg`: everything before it executed (all
        // charges applied first, matching `execute`'s charge order),
        // pc at the branch, last_check still armed.
        vm.push(mem, chk.branch_pc + chk.branch_len)?;
    }
    vm.stats.indirect_taken += 1;
    vm.last_check = None;
    vm.pc = target;
    Ok(Dispatch::Ran(Event::Continue))
}

/// Verbatim copies of the interpreter's straight-line arms (see
/// [`Vm::execute`]), minus everything a non-control instruction never
/// does: no `next` computation, no pc store, no step/cycle charge (the
/// block loop accumulates those locally).
fn exec_straight(
    vm: &mut Vm,
    mem: &mut Sandbox,
    tables: &IdTables,
    inst: &Inst,
    pc: u64,
) -> Result<(), VmError> {
    use mcfi_machine::AluOp;
    use mcfi_tables::Id;
    match *inst {
        Inst::MovImm { dst, imm } => vm.set_reg(dst, imm as u64),
        Inst::MovReg { dst, src } => vm.set_reg(dst, vm.reg(src)),
        Inst::Load { dst, base, offset } => {
            let addr = vm.reg(base).wrapping_add(offset as i64 as u64);
            let v = mem.read64(addr)?;
            vm.set_reg(dst, v);
        }
        Inst::Store { base, offset, src } => {
            let addr = vm.reg(base).wrapping_add(offset as i64 as u64);
            mem.write64(addr, vm.reg(src))?;
        }
        Inst::Load8 { dst, base, offset } => {
            let addr = vm.reg(base).wrapping_add(offset as i64 as u64);
            let v = mem.read8(addr)?;
            vm.set_reg(dst, u64::from(v));
        }
        Inst::Store8 { base, offset, src } => {
            let addr = vm.reg(base).wrapping_add(offset as i64 as u64);
            mem.write8(addr, vm.reg(src) as u8)?;
        }
        Inst::Lea { dst, base, offset } => {
            vm.set_reg(dst, vm.reg(base).wrapping_add(offset as i64 as u64));
        }
        Inst::Alu { op, dst, src } => {
            let a = vm.reg(dst) as i64;
            let b = vm.reg(src) as i64;
            let r = match op {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::Mul => a.wrapping_mul(b),
                AluOp::Div => {
                    if b == 0 {
                        return Err(VmError::DivideByZero { pc });
                    }
                    a.wrapping_div(b)
                }
                AluOp::Rem => {
                    if b == 0 {
                        return Err(VmError::DivideByZero { pc });
                    }
                    a.wrapping_rem(b)
                }
                AluOp::And => a & b,
                AluOp::Or => a | b,
                AluOp::Xor => a ^ b,
                AluOp::Shl => a.wrapping_shl(b as u32 & 63),
                AluOp::Shr => a.wrapping_shr(b as u32 & 63),
            };
            vm.set_reg(dst, r as u64);
        }
        Inst::AddImm { dst, imm } => {
            vm.set_reg(dst, vm.reg(dst).wrapping_add(imm as i64 as u64));
        }
        Inst::AndImm { dst, imm } => {
            vm.set_reg(dst, vm.reg(dst) & imm);
        }
        Inst::Cmp { a, b } => {
            vm.flags = (vm.reg(a) as i64).wrapping_sub(vm.reg(b) as i64).signum();
        }
        Inst::Cmp16 { a, b } => {
            vm.flags = i64::from((vm.reg(a) as u16) != (vm.reg(b) as u16));
        }
        Inst::CmpImm { a, imm } => {
            vm.flags = (vm.reg(a) as i64).wrapping_sub(imm as i64).signum();
        }
        Inst::TestImm { a, imm } => {
            vm.flags = i64::from(vm.reg(a) & (imm as i64 as u64) != 0);
        }
        Inst::SetCc { cc, dst } => {
            let v = u64::from(vm.cond(cc));
            vm.set_reg(dst, v);
        }
        Inst::Push { reg } => vm.push(mem, vm.reg(reg))?,
        Inst::Pop { reg } => {
            let v = vm.pop(mem)?;
            vm.set_reg(reg, v);
        }
        Inst::Trunc32 { reg } => {
            vm.set_reg(reg, vm.reg(reg) & 0xffff_ffff);
        }
        Inst::TaryLoad { dst, addr } => {
            let target = vm.reg(addr);
            let word = tables.tary_word(target);
            vm.set_reg(dst, u64::from(word));
            vm.stats.checks += 1;
            if let Some(slot) = vm.last_bary {
                if let (Some(b), Some(t)) =
                    (Id::from_word(tables.bary_word(slot)), Id::from_word(word))
                {
                    if b.version() != t.version() {
                        vm.stats.check_retries += 1;
                    }
                }
                vm.last_check = Some((slot, target));
            }
        }
        Inst::BaryLoad { dst, slot } => {
            let word = tables.bary_word(slot as usize);
            vm.set_reg(dst, u64::from(word));
            vm.last_bary = Some(slot as usize);
        }
        Inst::FAlu { op, dst, src } => {
            use mcfi_machine::FaluOp;
            let a = f64::from_bits(vm.reg(dst));
            let b = f64::from_bits(vm.reg(src));
            let r = match op {
                FaluOp::Add => a + b,
                FaluOp::Sub => a - b,
                FaluOp::Mul => a * b,
                FaluOp::Div => a / b,
            };
            vm.set_reg(dst, r.to_bits());
        }
        Inst::FCmp { a, b } => {
            let x = f64::from_bits(vm.reg(a));
            let y = f64::from_bits(vm.reg(b));
            vm.flags = match x.partial_cmp(&y) {
                Some(std::cmp::Ordering::Less) => -1,
                Some(std::cmp::Ordering::Equal) => 0,
                _ => 1, // Greater or unordered (NaN)
            };
        }
        Inst::CvtIF { dst, src } => {
            let v = vm.reg(src) as i64 as f64;
            vm.set_reg(dst, v.to_bits());
        }
        Inst::CvtFI { dst, src } => {
            let v = f64::from_bits(vm.reg(src)) as i64;
            vm.set_reg(dst, v as u64);
        }
        Inst::Nop => {}
        // The translator classifies every control-flow instruction as
        // Flow/Term/Check; its match is compiler-exhaustive.
        _ => unreachable!("control flow classified as straight-line"),
    }
    Ok(())
}
