//! Sandboxed process memory with W^X region permissions.
//!
//! The MCFI runtime "enforces the invariant that no memory regions are
//! both writable and executable at the same time" (paper §4). The
//! sandbox models the low `[0, 4 GiB)` region the instrumentation masks
//! writes into; in this reproduction its backing store is a smaller
//! configurable buffer, with every access bounds- and permission-checked.

use core::cell::Cell;
use core::fmt;

/// Region permissions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Perm {
    /// Readable only.
    R,
    /// Readable and writable (never executable).
    Rw,
    /// Readable and executable (never writable).
    Rx,
}

impl Perm {
    /// Whether data writes are allowed.
    pub fn writable(self) -> bool {
        matches!(self, Perm::Rw)
    }

    /// Whether instruction fetch is allowed.
    pub fn executable(self) -> bool {
        matches!(self, Perm::Rx)
    }
}

/// A permissioned address range `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Region {
    /// Inclusive start.
    pub start: u64,
    /// Exclusive end.
    pub end: u64,
    /// Permission.
    pub perm: Perm,
}

/// A memory fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemFault {
    /// Access outside any mapped region.
    Unmapped {
        /// Faulting address.
        addr: u64,
    },
    /// Write to a non-writable region.
    WriteProtected {
        /// Faulting address.
        addr: u64,
    },
    /// Instruction fetch from a non-executable region.
    ExecProtected {
        /// Faulting address.
        addr: u64,
    },
    /// The requested mapping would be writable and executable.
    WxViolation,
    /// The backing store is exhausted.
    OutOfMemory,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unmapped { addr } => write!(f, "unmapped access at {addr:#x}"),
            MemFault::WriteProtected { addr } => write!(f, "write to protected {addr:#x}"),
            MemFault::ExecProtected { addr } => write!(f, "execute from non-code {addr:#x}"),
            MemFault::WxViolation => write!(f, "mapping would be writable and executable"),
            MemFault::OutOfMemory => write!(f, "sandbox memory exhausted"),
        }
    }
}

impl std::error::Error for MemFault {}

/// The sandboxed memory image.
#[derive(Debug)]
pub struct Sandbox {
    bytes: Vec<u8>,
    regions: Vec<Region>,
    /// Code-visibility generation: bumped by every operation that can
    /// change what an instruction fetch observes — mapping or
    /// reprotecting regions, loader image writes, and raw mutable
    /// access. Ordinary `write8`/`write64` do *not* bump it: W^X
    /// guarantees they can never touch executable bytes, so cached
    /// decodings stay valid across them. Consumers (the predecode
    /// cache) compare this against the generation they were built at.
    generation: u64,
    /// Index of the region that served the last data access. Data
    /// traffic clusters on the stack, so this short-circuits the linear
    /// region scan almost every time. Regions are only ever appended
    /// (never removed, never resized), so the hint can go stale —
    /// costing one full scan — but never wrong.
    data_hint: Cell<usize>,
}

impl Sandbox {
    /// Creates a sandbox backed by `size` bytes (all initially unmapped).
    pub fn new(size: usize) -> Self {
        Sandbox {
            bytes: vec![0; size],
            regions: Vec::new(),
            generation: 0,
            data_hint: Cell::new(usize::MAX),
        }
    }

    /// The current code-visibility generation (see the field docs).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total backing size.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Maps `[start, start+len)` with `perm`.
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds the backing store or overlaps an
    /// existing region.
    pub fn map(&mut self, start: u64, len: u64, perm: Perm) -> Result<(), MemFault> {
        let end = start.checked_add(len).ok_or(MemFault::OutOfMemory)?;
        if end > self.bytes.len() as u64 {
            return Err(MemFault::OutOfMemory);
        }
        if self.regions.iter().any(|r| start < r.end && r.start < end) {
            return Err(MemFault::Unmapped { addr: start });
        }
        self.regions.push(Region { start, end, perm });
        self.generation += 1;
        Ok(())
    }

    /// Changes the permission of an exactly matching region, enforcing
    /// W^X (this is the `mprotect` interposition check of §7 — a region
    /// can never become writable and executable).
    ///
    /// # Errors
    ///
    /// Fails if no region matches exactly.
    pub fn protect(&mut self, start: u64, perm: Perm) -> Result<(), MemFault> {
        let r = self
            .regions
            .iter_mut()
            .find(|r| r.start == start)
            .ok_or(MemFault::Unmapped { addr: start })?;
        r.perm = perm;
        self.generation += 1;
        Ok(())
    }

    /// The region containing `addr`.
    pub fn region_of(&self, addr: u64) -> Option<Region> {
        self.regions.iter().copied().find(|r| r.start <= addr && addr < r.end)
    }

    /// All regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Region lookup through a last-hit hint cell.
    #[inline]
    fn find_region(&self, addr: u64, hint: &Cell<usize>) -> Option<Region> {
        if let Some(r) = self.regions.get(hint.get()) {
            if r.start <= addr && addr < r.end {
                return Some(*r);
            }
        }
        let idx = self.regions.iter().position(|r| r.start <= addr && addr < r.end)?;
        hint.set(idx);
        Some(self.regions[idx])
    }

    #[inline]
    fn check(&self, addr: u64, len: u64, write: bool) -> Result<(), MemFault> {
        let end = addr.checked_add(len).ok_or(MemFault::Unmapped { addr })?;
        let r = self.find_region(addr, &self.data_hint).ok_or(MemFault::Unmapped { addr })?;
        if end > r.end {
            return Err(MemFault::Unmapped { addr: r.end });
        }
        if write && !r.perm.writable() {
            return Err(MemFault::WriteProtected { addr });
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns a fault on unmapped access.
    #[inline]
    pub fn read8(&self, addr: u64) -> Result<u8, MemFault> {
        self.check(addr, 1, false)?;
        Ok(self.bytes[addr as usize])
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// Returns a fault on unmapped access.
    #[inline]
    pub fn read64(&self, addr: u64) -> Result<u64, MemFault> {
        self.check(addr, 8, false)?;
        let a = addr as usize;
        Ok(u64::from_le_bytes(self.bytes[a..a + 8].try_into().expect("8 bytes")))
    }

    /// Writes one byte (permission-checked).
    ///
    /// # Errors
    ///
    /// Returns a fault on unmapped or protected access.
    #[inline]
    pub fn write8(&mut self, addr: u64, v: u8) -> Result<(), MemFault> {
        self.check(addr, 1, true)?;
        self.bytes[addr as usize] = v;
        Ok(())
    }

    /// Writes a little-endian u64 (permission-checked).
    ///
    /// # Errors
    ///
    /// Returns a fault on unmapped or protected access.
    #[inline]
    pub fn write64(&mut self, addr: u64, v: u64) -> Result<(), MemFault> {
        self.check(addr, 8, true)?;
        let a = addr as usize;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Verifies `addr` may be fetched as code.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::ExecProtected`] for data addresses.
    pub fn check_exec(&self, addr: u64) -> Result<(), MemFault> {
        let r = self.region_of(addr).ok_or(MemFault::Unmapped { addr })?;
        if !r.perm.executable() {
            return Err(MemFault::ExecProtected { addr });
        }
        Ok(())
    }

    /// Copies bytes in, bypassing permissions — loader-only (the runtime
    /// writes code while the region is still `Rw`, then flips it to `Rx`).
    pub fn load_image(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let end = addr as usize + bytes.len();
        if end > self.bytes.len() {
            return Err(MemFault::OutOfMemory);
        }
        self.bytes[addr as usize..end].copy_from_slice(bytes);
        self.generation += 1;
        Ok(())
    }

    /// Reads a NUL-terminated string (for syscall arguments).
    ///
    /// # Errors
    ///
    /// Returns a fault on unmapped access or strings longer than 4 KiB.
    pub fn read_cstr(&self, addr: u64) -> Result<String, MemFault> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let b = self.read8(a)?;
            if b == 0 {
                break;
            }
            out.push(b);
            a += 1;
            if out.len() > 4096 {
                return Err(MemFault::Unmapped { addr: a });
            }
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    /// Captures the full memory image and region table, for transactional
    /// operations (a dynamic load that may have to be undone).
    pub fn snapshot(&self) -> SandboxSnapshot {
        SandboxSnapshot { bytes: self.bytes.clone(), regions: self.regions.clone() }
    }

    /// Restores a [`Sandbox::snapshot`], discarding every mapping and
    /// byte written since it was taken.
    ///
    /// The generation counter is *not* restored: it keeps counting
    /// forward, so predecode caches built against the discarded state can
    /// never validate against the restored one.
    pub fn restore(&mut self, snap: SandboxSnapshot) {
        self.bytes = snap.bytes;
        self.regions = snap.regions;
        self.generation += 1;
        self.data_hint.set(usize::MAX);
    }

    /// Raw view of the backing store (used by the attacker thread in the
    /// threat model: "the attacker can corrupt writable memory between
    /// any two instructions", §4).
    pub fn raw_mut(&mut self) -> &mut [u8] {
        // The caller may rewrite any byte, executable ones included, so
        // every cached decoding is suspect afterwards.
        self.generation += 1;
        &mut self.bytes
    }

    /// Raw read-only view.
    pub fn raw(&self) -> &[u8] {
        &self.bytes
    }
}

/// An owned copy of a sandbox's memory image and region table (see
/// [`Sandbox::snapshot`]).
#[derive(Clone, Debug)]
pub struct SandboxSnapshot {
    bytes: Vec<u8>,
    regions: Vec<Region>,
}

impl SandboxSnapshot {
    /// A content digest (FNV-1a over the image and region table) for
    /// integrity-checking stored snapshots: a checkpoint records the
    /// digest at capture time and verifies it before restoring, so a
    /// corrupted checkpoint is detected instead of silently resuming
    /// from garbage.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        };
        for &b in &self.bytes {
            eat(b);
        }
        for r in &self.regions {
            for b in r.start.to_le_bytes().into_iter().chain(r.end.to_le_bytes()) {
                eat(b);
            }
            eat(match r.perm {
                Perm::R => 0,
                Perm::Rw => 1,
                Perm::Rx => 2,
            });
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_restore_undoes_mappings_and_writes() {
        let mut m = Sandbox::new(0x1000);
        m.map(0, 0x100, Perm::Rw).unwrap();
        m.write64(0x10, 7).unwrap();
        let snap = m.snapshot();
        let g_snap = m.generation();
        m.write64(0x10, 99).unwrap();
        m.map(0x200, 0x100, Perm::Rx).unwrap();
        m.load_image(0x200, &[1, 2, 3]).unwrap();
        m.restore(snap);
        assert_eq!(m.read64(0x10).unwrap(), 7, "bytes roll back");
        assert!(m.region_of(0x200).is_none(), "mappings roll back");
        assert!(
            m.generation() > g_snap,
            "generation must keep counting so stale caches rebuild"
        );
    }

    #[test]
    fn mapping_and_rw_round_trip() {
        let mut m = Sandbox::new(0x1000);
        m.map(0x100, 0x100, Perm::Rw).unwrap();
        m.write64(0x100, 0xdead_beef).unwrap();
        assert_eq!(m.read64(0x100).unwrap(), 0xdead_beef);
        m.write8(0x1ff, 7).unwrap();
        assert_eq!(m.read8(0x1ff).unwrap(), 7);
    }

    #[test]
    fn unmapped_access_faults() {
        let m = Sandbox::new(0x1000);
        assert!(matches!(m.read8(0x10), Err(MemFault::Unmapped { .. })));
    }

    #[test]
    fn writes_to_code_fault() {
        let mut m = Sandbox::new(0x1000);
        m.map(0, 0x100, Perm::Rx).unwrap();
        assert!(matches!(m.write8(0x10, 1), Err(MemFault::WriteProtected { .. })));
        assert!(m.check_exec(0x10).is_ok());
    }

    #[test]
    fn execution_from_data_faults() {
        let mut m = Sandbox::new(0x1000);
        m.map(0, 0x100, Perm::Rw).unwrap();
        assert!(matches!(m.check_exec(0x10), Err(MemFault::ExecProtected { .. })));
    }

    #[test]
    fn regions_cannot_overlap() {
        let mut m = Sandbox::new(0x1000);
        m.map(0, 0x100, Perm::Rw).unwrap();
        assert!(m.map(0x80, 0x100, Perm::R).is_err());
    }

    #[test]
    fn access_straddling_region_end_faults() {
        let mut m = Sandbox::new(0x1000);
        m.map(0, 0x10, Perm::Rw).unwrap();
        assert!(m.read64(0xc).is_err());
        assert!(m.write64(0xc, 1).is_err());
    }

    #[test]
    fn protect_flips_permissions() {
        let mut m = Sandbox::new(0x1000);
        m.map(0, 0x100, Perm::Rw).unwrap();
        m.load_image(0, &[1, 2, 3]).unwrap();
        m.protect(0, Perm::Rx).unwrap();
        assert!(m.check_exec(0).is_ok());
        assert!(m.write8(0, 9).is_err());
    }

    #[test]
    fn cstr_reading() {
        let mut m = Sandbox::new(0x1000);
        m.map(0, 0x100, Perm::Rw).unwrap();
        m.load_image(0x10, b"hello\0").unwrap();
        assert_eq!(m.read_cstr(0x10).unwrap(), "hello");
    }

    #[test]
    fn generation_tracks_code_visible_changes() {
        let mut m = Sandbox::new(0x1000);
        let g0 = m.generation();
        m.map(0, 0x100, Perm::Rw).unwrap();
        let g1 = m.generation();
        assert!(g1 > g0, "map must bump the generation");
        m.load_image(0, &[1, 2, 3]).unwrap();
        let g2 = m.generation();
        assert!(g2 > g1, "load_image must bump the generation");
        m.protect(0, Perm::Rx).unwrap();
        let g3 = m.generation();
        assert!(g3 > g2, "protect must bump the generation");
        let _ = m.raw_mut();
        let g4 = m.generation();
        assert!(g4 > g3, "raw_mut must bump the generation");

        // Data writes cannot touch executable bytes (W^X), so they do
        // not invalidate cached decodings.
        m.map(0x200, 0x100, Perm::Rw).unwrap();
        let g5 = m.generation();
        m.write64(0x200, 42).unwrap();
        m.write8(0x208, 7).unwrap();
        assert_eq!(m.generation(), g5, "data writes must not bump the generation");
    }

    #[test]
    fn out_of_backing_mapping_fails() {
        let mut m = Sandbox::new(0x100);
        assert!(matches!(m.map(0x80, 0x100, Perm::Rw), Err(MemFault::OutOfMemory)));
    }
}
