//! Synthesized runtime-provided modules: the system-call stubs.
//!
//! The MCFI runtime "does not allow modules to directly invoke native
//! system calls. Instead, it wraps system calls as API functions and
//! checks their arguments" (paper §7). These wrappers are themselves MCFI
//! modules: instrumented, typed (so type-matching CFG generation sees
//! them), and loaded into the sandbox like any other code.

use mcfi_machine::{encode_into, Cond, Inst, Reg};
use mcfi_minic::types::{FuncType, Type};
use mcfi_module::{BranchKind, FunctionSym, IndirectBranchInfo, Module};

/// Syscall numbers understood by the runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u64)]
#[allow(missing_docs)]
pub enum Sys {
    Exit = 0,
    Write = 1,
    Sbrk = 2,
    Mmap = 3,
    Mprotect = 4,
    Dlopen = 5,
    Dlsym = 6,
    Cycles = 7,
    Execve = 8,
}

fn sig(params: Vec<Type>, ret: Type) -> FuncType {
    FuncType { params, ret: Box::new(ret), variadic: false }
}

/// The stub table: `(exported name, syscall number, signature)`.
///
/// `execve` is exported under its real name — it is the "dangerous
/// library function" of the paper's GnuPG case study (§8.3).
pub fn stub_specs() -> Vec<(&'static str, Sys, FuncType)> {
    vec![
        ("__sys_exit", Sys::Exit, sig(vec![Type::Int], Type::Void)),
        (
            "__sys_write",
            Sys::Write,
            sig(vec![Type::Int, Type::Char.ptr(), Type::Int], Type::Int),
        ),
        ("__sys_sbrk", Sys::Sbrk, sig(vec![Type::Int], Type::Void.ptr())),
        ("__sys_mmap", Sys::Mmap, sig(vec![Type::Int, Type::Int], Type::Void.ptr())),
        (
            "__sys_mprotect",
            Sys::Mprotect,
            sig(vec![Type::Void.ptr(), Type::Int], Type::Int),
        ),
        ("__sys_dlopen", Sys::Dlopen, sig(vec![Type::Char.ptr()], Type::Int)),
        ("__sys_dlsym", Sys::Dlsym, sig(vec![Type::Char.ptr()], Type::Void.ptr())),
        ("__sys_cycles", Sys::Cycles, sig(vec![], Type::Int)),
        ("execve", Sys::Execve, sig(vec![Type::Char.ptr()], Type::Int)),
    ]
}

/// Builds the syscall-stub module. Each stub is:
///
/// ```text
/// entry:  mov  %rax, $N        ; syscall number
///         syscall              ; dispatched to the trusted runtime
///         pop  %rcx            ; instrumented return (Fig. 4)
///         <check transaction>
///         jmp  *%rcx
/// ```
pub fn syscall_module() -> Module {
    syscall_module_with(true)
}

/// Like [`syscall_module`], but lets the caller request *uninstrumented*
/// stubs (raw `ret`) for no-CFI baseline measurements — an instrumented
/// stub returning into unaligned baseline code would otherwise halt.
pub fn syscall_module_with(instrumented: bool) -> Module {
    let mut m = Module::new("__syscalls");
    let mut code = Vec::new();
    for (name, num, fsig) in stub_specs() {
        while code.len() % 4 != 0 {
            encode_into(&Inst::Nop, &mut code);
        }
        let entry = code.len();
        encode_into(&Inst::MovImm { dst: Reg::Rax, imm: num as i64 }, &mut code);
        encode_into(&Inst::Syscall, &mut code);
        if instrumented {
            let branch =
                emit_return_check(&mut code, m.aux.indirect_branches.len() as u32, name);
            m.aux.indirect_branches.push(branch);
        } else {
            encode_into(&Inst::Ret, &mut code);
        }
        m.functions.insert(
            name.to_string(),
            FunctionSym {
                offset: entry,
                size: code.len() - entry,
                sig: fsig,
                is_static: false,
                address_taken: false,
            },
        );
    }
    m.code = code;
    m
}

/// Emits the Fig. 4 return-check sequence (target popped into `%rcx`),
/// returning its branch record with offsets relative to the code buffer.
pub fn emit_return_check(code: &mut Vec<u8>, slot: u32, func: &str) -> IndirectBranchInfo {
    encode_into(&Inst::Pop { reg: Reg::Rcx }, code);
    encode_into(&Inst::Trunc32 { reg: Reg::Rcx }, code);
    let try_ = code.len();
    let check_offset = code.len();
    encode_into(&Inst::BaryLoad { dst: Reg::Rdi, slot }, code);
    encode_into(&Inst::TaryLoad { dst: Reg::Rsi, addr: Reg::Rcx }, code);
    encode_into(&Inst::Cmp { a: Reg::Rdi, b: Reg::Rsi }, code);
    let jcc_check = code.len();
    encode_into(&Inst::Jcc { cc: Cond::Ne, rel: 0 }, code);
    let branch_offset = code.len();
    encode_into(&Inst::JmpReg { reg: Reg::Rcx }, code);
    let check = code.len();
    patch_rel(code, jcc_check, check);
    encode_into(&Inst::TestImm { a: Reg::Rsi, imm: 1 }, code);
    let jcc_halt = code.len();
    encode_into(&Inst::Jcc { cc: Cond::Eq, rel: 0 }, code);
    encode_into(&Inst::Cmp16 { a: Reg::Rdi, b: Reg::Rsi }, code);
    let jcc_retry = code.len();
    encode_into(&Inst::Jcc { cc: Cond::Ne, rel: 0 }, code);
    let halt = code.len();
    encode_into(&Inst::Hlt, code);
    patch_rel(code, jcc_halt, halt);
    patch_rel(code, jcc_retry, try_);
    IndirectBranchInfo {
        local_slot: slot,
        check_offset,
        branch_offset,
        in_function: func.to_string(),
        kind: BranchKind::Return { function: func.to_string() },
    }
}

/// Patches a 6-byte `Jcc` at `at` to target absolute buffer offset `to`.
fn patch_rel(code: &mut [u8], at: usize, to: usize) {
    let rel = (to as i64 - (at as i64 + 6)) as i32;
    code[at + 2..at + 6].copy_from_slice(&rel.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfi_machine::decode_all;

    #[test]
    fn stub_module_decodes_completely() {
        let m = syscall_module();
        decode_all(&m.code).expect("stub code disassembles");
        assert_eq!(m.functions.len(), stub_specs().len());
        assert_eq!(m.aux.indirect_branches.len(), stub_specs().len());
    }

    #[test]
    fn stub_entries_are_aligned() {
        let m = syscall_module();
        for (name, f) in &m.functions {
            assert_eq!(f.offset % 4, 0, "{name}");
        }
    }

    #[test]
    fn stubs_carry_signatures_for_type_matching() {
        let m = syscall_module();
        let execve = &m.functions["execve"];
        assert_eq!(execve.sig.params, vec![Type::Char.ptr()]);
        assert_eq!(*execve.sig.ret, Type::Int);
    }

    #[test]
    fn each_stub_has_an_instrumented_return() {
        let m = syscall_module();
        for b in &m.aux.indirect_branches {
            assert!(matches!(b.kind, BranchKind::Return { .. }));
            let (inst, _) = mcfi_machine::decode(&m.code, b.check_offset)
                .expect("stub check_offset decodes inside the emitted code");
            assert!(matches!(inst, Inst::BaryLoad { .. }));
            let (inst, _) = mcfi_machine::decode(&m.code, b.branch_offset)
                .expect("stub branch_offset decodes inside the emitted code");
            assert!(matches!(inst, Inst::JmpReg { reg: Reg::Rcx }));
        }
    }
}
