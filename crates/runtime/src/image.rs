//! Shared module images: one immutable module set whose policy is
//! published once into a [`SharedTables`] base, with N processes
//! attached through per-process copy-on-write delta shards.
//!
//! This is the multi-tenant half of the paper's story: the module
//! *bytes* and the version-stamped base tables are built once, every
//! attached [`Process`] gets its own sandbox and GOT but layers its ID
//! tables over the shared base, and a single batched `TxUpdate` —
//! whichever shard runs it — retargets the base and every attached
//! process in one version bump (see [`mcfi_tables::SharedTablesAt`]).
//!
//! Attachment is observable without locks via the publication epoch:
//! [`SharedImage::epoch`] counts committed image-wide transactions, so
//! a process comparing its cached epoch against
//! [`mcfi_tables::IdTablesAt::publication_epoch`] notices a batched
//! retarget the moment it commits.

use std::collections::HashMap;
use std::sync::Arc;

use mcfi_module::Module;
use mcfi_tables::{Id, SharedTables, TablesConfig, UpdateStats};

use crate::process::{LoadError, Process, ProcessOptions};

/// An immutable module image plus its published base tables.
///
/// Cloning is shallow: clones share the module set and the tables, so a
/// fleet can hand one image to many tenants.
#[derive(Clone)]
pub struct SharedImage {
    modules: Arc<Vec<Module>>,
    tables: SharedTables,
    opts: ProcessOptions,
}

impl std::fmt::Debug for SharedImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedImage")
            .field("modules", &self.modules.len())
            .field("attached", &self.tables.attached())
            .field("epoch", &self.tables.epoch())
            .finish()
    }
}

impl SharedImage {
    /// Builds an image from a module set (in load order): boots a
    /// throwaway prototype process to prove the set loads and to derive
    /// its control-flow policy, then publishes that policy into a fresh
    /// shared base with one update transaction.
    ///
    /// # Errors
    ///
    /// Any [`LoadError`] the prototype boot reports — a module set that
    /// cannot load privately cannot be shared either.
    pub fn build(modules: Vec<Module>, opts: ProcessOptions) -> Result<Self, LoadError> {
        let mut proto = Process::new(opts)?;
        proto.load_all(modules.clone())?;
        let proto_tables = proto.tables();
        let tables = SharedTables::new(TablesConfig {
            code_size: opts.layout.code_limit as usize,
            bary_slots: opts.bary_capacity,
        });
        let tary: HashMap<u64, u32> = proto_tables
            .tary_view()
            .targets()
            .map(|(addr, id)| (addr, id.ecn().raw()))
            .collect();
        let bary: Vec<Option<u32>> = (0..proto_tables.bary_len())
            .map(|slot| Id::from_word(proto_tables.bary_word(slot)).map(|id| id.ecn().raw()))
            .collect();
        tables.base().update(
            move |addr| tary.get(&addr).copied(),
            move |slot| bary.get(slot).copied().flatten(),
        );
        Ok(SharedImage { modules: Arc::new(modules), tables, opts })
    }

    /// Attaches a new process with the image's canonical options: a
    /// fresh sandbox loading the shared module set, its ID tables a
    /// delta shard over the image base.
    pub fn attach(&self) -> Result<Process, LoadError> {
        self.attach_with(self.opts)
    }

    /// Like [`SharedImage::attach`] with per-process options (violation
    /// policy, step ceilings, …). The layout and `bary_capacity` must
    /// match the image's, since they size the shared tables.
    pub fn attach_with(&self, opts: ProcessOptions) -> Result<Process, LoadError> {
        let delta = self.tables.attach();
        let mut p = Process::new_attached(opts, delta)?;
        p.load_all(self.modules.as_ref().clone())?;
        Ok(p)
    }

    /// One batched `TxUpdate` against the image base: installs a new
    /// base policy and re-stamps every attached process's delta in the
    /// same transaction — the one-update-many-processes operation the
    /// sharing refactor exists for. Per-process overrides (delta-owned
    /// words) survive; everything a process didn't override follows the
    /// new base policy.
    pub fn retarget_all(
        &self,
        tary_ecn: impl Fn(u64) -> Option<u32>,
        bary_ecn: impl Fn(usize) -> Option<u32>,
    ) -> UpdateStats {
        self.tables.base().update(tary_ecn, bary_ecn)
    }

    /// The Fig. 6 workload as a batched image operation: re-stamps every
    /// ID in every shard with one version bump.
    pub fn bump_all(&self) -> UpdateStats {
        self.tables.base().bump_version()
    }

    /// The image's shared tables (base + attach surface).
    pub fn tables(&self) -> &SharedTables {
        &self.tables
    }

    /// The image-wide publication epoch.
    pub fn epoch(&self) -> u64 {
        self.tables.epoch()
    }

    /// Number of currently attached processes.
    pub fn attached(&self) -> usize {
        self.tables.attached()
    }

    /// The canonical process options the image was built with.
    pub fn options(&self) -> ProcessOptions {
        self.opts
    }

    /// The immutable module set (in load order).
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }
}
