//! The SimX64 interpreter.
//!
//! Executes instrumented code in the sandbox, accumulating the cycle
//! charges from [`mcfi_machine::cost_of`] — the "execution time" of
//! Figs. 5/6. The check-transaction instructions (`BaryLoad`/`TaryLoad`)
//! read the *real* shared [`IdTables`], so concurrent update transactions
//! from other host threads genuinely race with checks, retries included:
//! the retry loop is instrumented code, and the VM simply executes it
//! again (charging cycles) exactly as hardware would.

use std::fmt;

use mcfi_machine::{cost_of, decode, AluOp, Cond, DecodeError, FaluOp, Inst, Reg};
use mcfi_tables::{Id, IdTables};

use crate::icache::PredecodeCache;
use crate::mem::{MemFault, Sandbox};

/// A VM-level execution error (distinct from a clean exit or a CFI halt).
#[derive(Clone, Debug)]
pub enum VmError {
    /// Memory fault.
    Mem(MemFault),
    /// Undecodable instruction.
    Decode(DecodeError),
    /// Integer division by zero.
    DivideByZero {
        /// Faulting pc.
        pc: u64,
    },
    /// Jump-table index out of bounds (cannot happen in verified code).
    TableIndex {
        /// Faulting pc.
        pc: u64,
    },
    /// The step budget was exhausted.
    StepLimit,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Mem(m) => write!(f, "memory fault: {m}"),
            VmError::Decode(d) => write!(f, "decode fault: {d}"),
            VmError::DivideByZero { pc } => write!(f, "division by zero at {pc:#x}"),
            VmError::TableIndex { pc } => write!(f, "jump-table index out of range at {pc:#x}"),
            VmError::StepLimit => write!(f, "step limit exhausted"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<MemFault> for VmError {
    fn from(m: MemFault) -> Self {
        VmError::Mem(m)
    }
}

impl From<DecodeError> for VmError {
    fn from(d: DecodeError) -> Self {
        VmError::Decode(d)
    }
}

/// What a single step produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// Keep going.
    Continue,
    /// A `Syscall` instruction fired; the runtime must service it.
    Syscall,
    /// A `Hlt` executed — a CFI violation (or deliberate stop) at `pc`.
    Halt {
        /// Address of the `Hlt`.
        pc: u64,
    },
}

/// Execution statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VmStats {
    /// Instructions executed.
    pub steps: u64,
    /// Simulated cycles charged.
    pub cycles: u64,
    /// Check transactions started (`TaryLoad` executions; includes
    /// retries of the same logical check).
    pub checks: u64,
    /// Indirect branches actually taken.
    pub indirect_taken: u64,
    /// Predecode-cache hits (fetches served from the side-table).
    pub icache_hits: u64,
    /// Predecode-cache misses (fetches that fell back to a live decode).
    pub icache_misses: u64,
    /// Predecode-cache rebuilds forced by a sandbox generation change
    /// (module loads, reprotections, loader patches).
    pub icache_invalidations: u64,
    /// Guest-level check retries: `TaryLoad` executions that observed a
    /// version differing from the branch ID's (the instrumented retry
    /// loop re-executes the load until the versions agree). The
    /// instrumented code spins invisibly to the host tables' own retry
    /// counter, so the VM counts these itself.
    pub check_retries: u64,
    /// Translated blocks dispatched by the baseline-compiled tier
    /// (zero on untranslated runs; see [`crate::trans`]).
    pub trans_dispatches: u64,
    /// Basic blocks lowered to threaded-code form.
    pub trans_translations: u64,
    /// Translations performed after at least one deoptimization — the
    /// lazy re-translation work a generation bump forces.
    pub trans_retranslations: u64,
    /// Deoptimization events: sandbox generation bumps that retired
    /// live translated blocks back to the `step_cached` interpreter.
    pub trans_deopts: u64,
    /// Dispatches that fell back to single-step interpretation (no
    /// block at pc, a block would cross an interpreter-visible boundary,
    /// or a specialized TxCheck fast path missed).
    pub trans_fallbacks: u64,
}

/// The machine state.
#[derive(Debug)]
pub struct Vm {
    /// General-purpose registers.
    pub regs: [u64; 16],
    /// Program counter.
    pub pc: u64,
    /// Signed comparison result: `<0`, `0`, `>0`.
    pub(crate) flags: i64,
    /// Statistics.
    pub stats: VmStats,
    /// Bary slot of the most recent `BaryLoad` (the check sequence loads
    /// the branch ID first).
    pub(crate) last_bary: Option<usize>,
    /// `(bary_slot, target)` of the most recent completed check-sequence
    /// load pair. Cleared by every successful indirect transfer, so at a
    /// `Hlt` it identifies the *failed* check — `None` at a `Hlt` means a
    /// deliberate halt, not a violation.
    pub(crate) last_check: Option<(usize, u64)>,
}

/// An opaque snapshot of the complete machine state ([`Vm::snapshot`]).
///
/// Captures the private parts too — comparison flags live across a
/// `Cmp`/`Jcc` pair and the last-check bookkeeping across a check
/// sequence — so a checkpoint taken between any two instructions
/// resumes bit-exactly. Only [`Vm::restore_state`] can consume one.
#[derive(Clone, Debug)]
pub struct VmState {
    regs: [u64; 16],
    pc: u64,
    flags: i64,
    stats: VmStats,
    last_bary: Option<usize>,
    last_check: Option<(usize, u64)>,
}

impl VmState {
    /// The program counter the snapshot resumes at.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The statistics as of the snapshot.
    pub fn stats(&self) -> VmStats {
        self.stats
    }
}

impl Vm {
    /// A machine with zeroed registers starting at `pc`.
    pub fn new(pc: u64) -> Self {
        Vm {
            regs: [0; 16],
            pc,
            flags: 0,
            stats: VmStats::default(),
            last_bary: None,
            last_check: None,
        }
    }

    /// Captures the complete machine state, private flags included.
    pub fn snapshot(&self) -> VmState {
        VmState {
            regs: self.regs,
            pc: self.pc,
            flags: self.flags,
            stats: self.stats,
            last_bary: self.last_bary,
            last_check: self.last_check,
        }
    }

    /// Restores a [`Vm::snapshot`], making the machine bit-identical to
    /// the captured one.
    pub fn restore_state(&mut self, state: &VmState) {
        self.regs = state.regs;
        self.pc = state.pc;
        self.flags = state.flags;
        self.stats = state.stats;
        self.last_bary = state.last_bary;
        self.last_check = state.last_check;
    }

    /// Takes the `(bary_slot, target)` of the check whose failure led to
    /// the current `Hlt`, if the halt came from a check sequence. The
    /// runtime's `Audit` violation policy uses this to diagnose the
    /// violation and resume execution at the target.
    pub fn take_last_check(&mut self) -> Option<(usize, u64)> {
        self.last_check.take()
    }

    pub(crate) fn reg(&self, r: Reg) -> u64 {
        self.regs[r.nibble() as usize]
    }

    pub(crate) fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.nibble() as usize] = v;
    }

    pub(crate) fn cond(&self, cc: Cond) -> bool {
        match cc {
            Cond::Eq => self.flags == 0,
            Cond::Ne => self.flags != 0,
            Cond::Lt => self.flags < 0,
            Cond::Le => self.flags <= 0,
            Cond::Gt => self.flags > 0,
            Cond::Ge => self.flags >= 0,
        }
    }

    pub(crate) fn push(&mut self, mem: &mut Sandbox, v: u64) -> Result<(), VmError> {
        let sp = self.reg(Reg::Rsp).wrapping_sub(8);
        mem.write64(sp, v)?;
        self.set_reg(Reg::Rsp, sp);
        Ok(())
    }

    pub(crate) fn pop(&mut self, mem: &Sandbox) -> Result<u64, VmError> {
        let sp = self.reg(Reg::Rsp);
        let v = mem.read64(sp)?;
        self.set_reg(Reg::Rsp, sp + 8);
        Ok(v)
    }

    /// Executes one instruction, decoding it from memory every step.
    ///
    /// This is the fetch path the concurrent-attacker harness must use:
    /// the attacker mutates raw memory between steps, so nothing about
    /// the code bytes may be assumed stable.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on faults; CFI violations surface as
    /// [`Event::Halt`] (the `hlt` of the check sequence), not as errors.
    pub fn step(&mut self, mem: &mut Sandbox, tables: &IdTables) -> Result<Event, VmError> {
        mem.check_exec(self.pc)?;
        let (inst, len) = decode(mem.raw(), self.pc as usize)?;
        let cost = cost_of(&inst);
        self.execute(mem, tables, inst, len as u64, cost)
    }

    /// Executes one instruction, fetching through the predecode cache.
    ///
    /// Produces exactly the same architectural effects as [`Vm::step`]
    /// for any pc: the cache memoises `check_exec` + `decode` results
    /// keyed by the sandbox's code generation, falling back to a live
    /// decode whenever it cannot prove the memoised answer still holds.
    ///
    /// # Errors
    ///
    /// Identical to [`Vm::step`].
    #[inline]
    pub fn step_cached(
        &mut self,
        mem: &mut Sandbox,
        tables: &IdTables,
        cache: &mut PredecodeCache,
    ) -> Result<Event, VmError> {
        let (inst, len, cost) = cache.fetch(mem, self.pc, &mut self.stats)?;
        self.execute(mem, tables, inst, len, cost)
    }

    /// Applies one already-fetched instruction to the machine state.
    #[inline]
    pub(crate) fn execute(
        &mut self,
        mem: &mut Sandbox,
        tables: &IdTables,
        inst: Inst,
        len: u64,
        cost: u64,
    ) -> Result<Event, VmError> {
        self.stats.steps += 1;
        self.stats.cycles += cost;
        let mut next = self.pc + len;
        match inst {
            Inst::MovImm { dst, imm } => self.set_reg(dst, imm as u64),
            Inst::MovReg { dst, src } => self.set_reg(dst, self.reg(src)),
            Inst::Load { dst, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                let v = mem.read64(addr)?;
                self.set_reg(dst, v);
            }
            Inst::Store { base, offset, src } => {
                let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                mem.write64(addr, self.reg(src))?;
            }
            Inst::Load8 { dst, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                let v = mem.read8(addr)?;
                self.set_reg(dst, u64::from(v));
            }
            Inst::Store8 { base, offset, src } => {
                let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                mem.write8(addr, self.reg(src) as u8)?;
            }
            Inst::Lea { dst, base, offset } => {
                self.set_reg(dst, self.reg(base).wrapping_add(offset as i64 as u64));
            }
            Inst::Alu { op, dst, src } => {
                let a = self.reg(dst) as i64;
                let b = self.reg(src) as i64;
                let r = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::Div => {
                        if b == 0 {
                            return Err(VmError::DivideByZero { pc: self.pc });
                        }
                        a.wrapping_div(b)
                    }
                    AluOp::Rem => {
                        if b == 0 {
                            return Err(VmError::DivideByZero { pc: self.pc });
                        }
                        a.wrapping_rem(b)
                    }
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Shl => a.wrapping_shl(b as u32 & 63),
                    AluOp::Shr => a.wrapping_shr(b as u32 & 63),
                };
                self.set_reg(dst, r as u64);
            }
            Inst::AddImm { dst, imm } => {
                self.set_reg(dst, self.reg(dst).wrapping_add(imm as i64 as u64));
            }
            Inst::AndImm { dst, imm } => {
                self.set_reg(dst, self.reg(dst) & imm);
            }
            Inst::Cmp { a, b } => {
                self.flags = (self.reg(a) as i64).wrapping_sub(self.reg(b) as i64).signum();
            }
            Inst::Cmp16 { a, b } => {
                // The version comparison: equality of the low 16 bits.
                self.flags = i64::from((self.reg(a) as u16) != (self.reg(b) as u16));
            }
            Inst::CmpImm { a, imm } => {
                self.flags = (self.reg(a) as i64).wrapping_sub(imm as i64).signum();
            }
            Inst::TestImm { a, imm } => {
                self.flags = i64::from(self.reg(a) & (imm as i64 as u64) != 0);
            }
            Inst::SetCc { cc, dst } => {
                let v = u64::from(self.cond(cc));
                self.set_reg(dst, v);
            }
            Inst::Jmp { rel } => {
                next = next.wrapping_add(rel as i64 as u64);
            }
            Inst::Jcc { cc, rel } => {
                if self.cond(cc) {
                    next = next.wrapping_add(rel as i64 as u64);
                }
            }
            Inst::Call { rel } => {
                self.push(mem, next)?;
                next = next.wrapping_add(rel as i64 as u64);
            }
            Inst::CallReg { reg } => {
                self.push(mem, next)?;
                next = self.reg(reg);
                self.stats.indirect_taken += 1;
                self.last_check = None;
            }
            Inst::JmpReg { reg } => {
                next = self.reg(reg);
                self.stats.indirect_taken += 1;
                self.last_check = None;
            }
            Inst::JmpTable { index, table, len } => {
                let idx = self.reg(index);
                if idx >= u64::from(len) {
                    return Err(VmError::TableIndex { pc: self.pc });
                }
                // Jump tables live in the read-only code region.
                next = mem.read64(u64::from(table) + idx * 8)?;
                self.stats.indirect_taken += 1;
                self.last_check = None;
            }
            Inst::Ret => {
                next = self.pop(mem)?;
                self.stats.indirect_taken += 1;
                self.last_check = None;
            }
            Inst::Push { reg } => self.push(mem, self.reg(reg))?,
            Inst::Pop { reg } => {
                let v = self.pop(mem)?;
                self.set_reg(reg, v);
            }
            Inst::Trunc32 { reg } => {
                self.set_reg(reg, self.reg(reg) & 0xffff_ffff);
            }
            Inst::TaryLoad { dst, addr } => {
                // Reads the shared ID tables — outside the sandbox, exactly
                // like the segment-based %gs access of the paper.
                let target = self.reg(addr);
                let word = tables.tary_word(target);
                self.set_reg(dst, u64::from(word));
                self.stats.checks += 1;
                if let Some(slot) = self.last_bary {
                    if let (Some(b), Some(t)) = (
                        Id::from_word(tables.bary_word(slot)),
                        Id::from_word(word),
                    ) {
                        if b.version() != t.version() {
                            self.stats.check_retries += 1;
                        }
                    }
                    self.last_check = Some((slot, target));
                }
            }
            Inst::BaryLoad { dst, slot } => {
                let word = tables.bary_word(slot as usize);
                self.set_reg(dst, u64::from(word));
                self.last_bary = Some(slot as usize);
            }
            Inst::FAlu { op, dst, src } => {
                let a = f64::from_bits(self.reg(dst));
                let b = f64::from_bits(self.reg(src));
                let r = match op {
                    FaluOp::Add => a + b,
                    FaluOp::Sub => a - b,
                    FaluOp::Mul => a * b,
                    FaluOp::Div => a / b,
                };
                self.set_reg(dst, r.to_bits());
            }
            Inst::FCmp { a, b } => {
                let x = f64::from_bits(self.reg(a));
                let y = f64::from_bits(self.reg(b));
                self.flags = match x.partial_cmp(&y) {
                    Some(std::cmp::Ordering::Less) => -1,
                    Some(std::cmp::Ordering::Equal) => 0,
                    _ => 1, // Greater or unordered (NaN)
                };
            }
            Inst::CvtIF { dst, src } => {
                let v = self.reg(src) as i64 as f64;
                self.set_reg(dst, v.to_bits());
            }
            Inst::CvtFI { dst, src } => {
                let v = f64::from_bits(self.reg(src)) as i64;
                self.set_reg(dst, v as u64);
            }
            Inst::Syscall => {
                self.pc = next;
                return Ok(Event::Syscall);
            }
            Inst::Hlt => {
                return Ok(Event::Halt { pc: self.pc });
            }
            Inst::Nop => {}
        }
        self.pc = next;
        Ok(Event::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Perm;
    use mcfi_machine::encode;
    use mcfi_tables::TablesConfig;

    fn setup(insts: &[Inst]) -> (Vm, Sandbox, IdTables) {
        let code = encode(insts);
        let mut mem = Sandbox::new(0x10000);
        mem.map(0, 0x1000, Perm::Rx).unwrap();
        mem.load_image(0, &code).unwrap();
        mem.map(0x1000, 0x1000, Perm::Rw).unwrap(); // stack/data
        let tables = IdTables::new(TablesConfig { code_size: 0x1000, bary_slots: 8 });
        let mut vm = Vm::new(0);
        vm.set_reg(Reg::Rsp, 0x2000);
        (vm, mem, tables)
    }

    fn run(vm: &mut Vm, mem: &mut Sandbox, tables: &IdTables, max: usize) -> Event {
        for _ in 0..max {
            match vm.step(mem, tables).unwrap() {
                Event::Continue => {}
                other => return other,
            }
        }
        panic!("did not finish in {max} steps");
    }

    #[test]
    fn arithmetic_executes() {
        let (mut vm, mut mem, tables) = setup(&[
            Inst::MovImm { dst: Reg::Rax, imm: 20 },
            Inst::MovImm { dst: Reg::Rbx, imm: 22 },
            Inst::Alu { op: AluOp::Add, dst: Reg::Rax, src: Reg::Rbx },
            Inst::Hlt,
        ]);
        run(&mut vm, &mut mem, &tables, 10);
        assert_eq!(vm.reg(Reg::Rax), 42);
        assert_eq!(vm.stats.steps, 4);
    }

    #[test]
    fn push_pop_round_trip() {
        let (mut vm, mut mem, tables) = setup(&[
            Inst::MovImm { dst: Reg::Rax, imm: 99 },
            Inst::Push { reg: Reg::Rax },
            Inst::MovImm { dst: Reg::Rax, imm: 0 },
            Inst::Pop { reg: Reg::Rbx },
            Inst::Hlt,
        ]);
        run(&mut vm, &mut mem, &tables, 10);
        assert_eq!(vm.reg(Reg::Rbx), 99);
        assert_eq!(vm.reg(Reg::Rsp), 0x2000);
    }

    #[test]
    fn conditional_jumps_follow_flags() {
        let (mut vm, mut mem, tables) = setup(&[
            Inst::MovImm { dst: Reg::Rax, imm: 5 },
            Inst::CmpImm { a: Reg::Rax, imm: 5 },
            Inst::Jcc { cc: Cond::Eq, rel: 10 }, // skip the next MovImm
            Inst::MovImm { dst: Reg::Rbx, imm: 1 },
            Inst::Hlt,
        ]);
        run(&mut vm, &mut mem, &tables, 10);
        assert_eq!(vm.reg(Reg::Rbx), 0, "MovImm must be skipped");
    }

    #[test]
    fn division_by_zero_faults() {
        let (mut vm, mut mem, tables) = setup(&[
            Inst::MovImm { dst: Reg::Rax, imm: 1 },
            Inst::MovImm { dst: Reg::Rbx, imm: 0 },
            Inst::Alu { op: AluOp::Div, dst: Reg::Rax, src: Reg::Rbx },
        ]);
        vm.step(&mut mem, &tables).unwrap();
        vm.step(&mut mem, &tables).unwrap();
        assert!(matches!(
            vm.step(&mut mem, &tables),
            Err(VmError::DivideByZero { .. })
        ));
    }

    #[test]
    fn float_ops_use_bit_patterns() {
        let (mut vm, mut mem, tables) = setup(&[
            Inst::MovImm { dst: Reg::Rax, imm: 1.5f64.to_bits() as i64 },
            Inst::MovImm { dst: Reg::Rbx, imm: 2.25f64.to_bits() as i64 },
            Inst::FAlu { op: FaluOp::Add, dst: Reg::Rax, src: Reg::Rbx },
            Inst::Hlt,
        ]);
        run(&mut vm, &mut mem, &tables, 10);
        assert_eq!(f64::from_bits(vm.reg(Reg::Rax)), 3.75);
    }

    #[test]
    fn executing_data_faults() {
        let (mut vm, mut mem, tables) = setup(&[Inst::Hlt]);
        vm.pc = 0x1800; // inside the Rw region
        assert!(matches!(
            vm.step(&mut mem, &tables),
            Err(VmError::Mem(MemFault::ExecProtected { .. }))
        ));
    }

    #[test]
    fn writing_code_faults() {
        let (mut vm, mut mem, tables) = setup(&[
            Inst::MovImm { dst: Reg::Rdx, imm: 0x10 },
            Inst::MovImm { dst: Reg::Rax, imm: 1 },
            Inst::Store { base: Reg::Rdx, offset: 0, src: Reg::Rax },
        ]);
        vm.step(&mut mem, &tables).unwrap();
        vm.step(&mut mem, &tables).unwrap();
        assert!(matches!(
            vm.step(&mut mem, &tables),
            Err(VmError::Mem(MemFault::WriteProtected { .. }))
        ));
    }

    #[test]
    fn check_sequence_halts_on_bad_target() {
        // A raw check sequence with empty tables: target ID 0 is invalid,
        // so the fast compare fails, the validity test fails, halt.
        let (mut vm, mut mem, tables) = setup(&[
            Inst::MovImm { dst: Reg::Rcx, imm: 0x100 },
            Inst::Trunc32 { reg: Reg::Rcx },
            Inst::BaryLoad { dst: Reg::Rdi, slot: 0 },
            Inst::TaryLoad { dst: Reg::Rsi, addr: Reg::Rcx },
            Inst::Cmp { a: Reg::Rdi, b: Reg::Rsi },
            Inst::Jcc { cc: Cond::Ne, rel: 2 }, // skip JmpReg
            Inst::JmpReg { reg: Reg::Rcx },
            Inst::TestImm { a: Reg::Rsi, imm: 1 },
            Inst::Jcc { cc: Cond::Eq, rel: 0 }, // fall through to Hlt either way
            Inst::Hlt,
        ]);
        // Note: with both IDs zero the fast-path compare *succeeds* (0 == 0)
        // — which is why MCFI guarantees Bary slots always hold valid IDs.
        // Install a valid branch ID so the comparison fails as on hardware.
        tables.update(|_| None, |s| (s == 0).then_some(1));
        let ev = run(&mut vm, &mut mem, &tables, 20);
        assert!(matches!(ev, Event::Halt { .. }));
        assert_eq!(vm.stats.checks, 1);
    }

    #[test]
    fn check_sequence_passes_on_good_target() {
        let (mut vm, mut mem, tables) = setup(&[
            Inst::MovImm { dst: Reg::Rcx, imm: 0x100 },
            Inst::Trunc32 { reg: Reg::Rcx },
            Inst::BaryLoad { dst: Reg::Rdi, slot: 0 },
            Inst::TaryLoad { dst: Reg::Rsi, addr: Reg::Rcx },
            Inst::Cmp { a: Reg::Rdi, b: Reg::Rsi },
            Inst::Jcc { cc: Cond::Ne, rel: 2 },
            Inst::JmpReg { reg: Reg::Rcx },
            Inst::Hlt,
        ]);
        tables.update(|a| (a == 0x100).then_some(3), |s| (s == 0).then_some(3));
        // Put a Hlt at 0x100 so execution stops after the transfer.
        mem.protect(0, Perm::Rw).unwrap();
        mem.load_image(0x100, &encode(&[Inst::Hlt])).unwrap();
        mem.protect(0, Perm::Rx).unwrap();
        let ev = run(&mut vm, &mut mem, &tables, 20);
        assert_eq!(ev, Event::Halt { pc: 0x100 });
        assert_eq!(vm.stats.indirect_taken, 1);
    }

    #[test]
    fn syscall_surfaces_to_the_runtime() {
        let (mut vm, mut mem, tables) = setup(&[Inst::Syscall, Inst::Hlt]);
        assert_eq!(vm.step(&mut mem, &tables).unwrap(), Event::Syscall);
        // pc advanced past the syscall.
        assert_eq!(vm.pc, 1);
    }

    #[test]
    fn jump_table_dispatch() {
        // Table at 0x200 with 2 entries; index 1 -> 0x40.
        let (mut vm, mut mem, tables) = setup(&[
            Inst::MovImm { dst: Reg::Rax, imm: 1 },
            Inst::JmpTable { index: Reg::Rax, table: 0x200, len: 2 },
        ]);
        mem.protect(0, Perm::Rw).unwrap();
        let mut table = Vec::new();
        table.extend_from_slice(&0x30u64.to_le_bytes());
        table.extend_from_slice(&0x40u64.to_le_bytes());
        mem.load_image(0x200, &table).unwrap();
        mem.load_image(0x40, &encode(&[Inst::Hlt])).unwrap();
        mem.protect(0, Perm::Rx).unwrap();
        let ev = run(&mut vm, &mut mem, &tables, 10);
        assert_eq!(ev, Event::Halt { pc: 0x40 });
    }

    #[test]
    fn jump_table_bounds_are_enforced() {
        let (mut vm, mut mem, tables) = setup(&[
            Inst::MovImm { dst: Reg::Rax, imm: 9 },
            Inst::JmpTable { index: Reg::Rax, table: 0x200, len: 2 },
        ]);
        vm.step(&mut mem, &tables).unwrap();
        assert!(matches!(vm.step(&mut mem, &tables), Err(VmError::TableIndex { .. })));
    }
}
