//! The MCFI runtime: sandboxed loader, dynamic linker, VM, and syscall
//! interposition (paper §4, §6, §7).
//!
//! A [`Process`] owns a W^X-enforcing [`mem::Sandbox`], the shared
//! [`mcfi_tables::IdTables`], and the set of loaded modules. Libraries
//! registered with [`Process::register_library`] can be loaded at runtime
//! through the `dlopen` syscall: the loader maps the code writable,
//! relocates and patches it, flips it executable, regenerates the CFG by
//! type matching over *all* loaded modules, and installs the new policy
//! with a single update transaction — GOT entries are adjusted between
//! the Tary and Bary phases, exactly as §5.2 prescribes.
//!
//! The VM executes instrumented SimX64 code against the *real* shared
//! tables, so a concurrent updater thread (Fig. 6's experiment) races
//! with check transactions exactly as on hardware, including retries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod icache;
pub mod image;
pub mod mem;
pub mod process;
pub mod stdlib;
pub mod synth;
pub mod trans;
pub mod vm;

pub use icache::PredecodeCache;
pub use image::SharedImage;
pub use trans::TransCache;
pub use mem::SandboxSnapshot;
pub use process::{
    Checkpoint, FaultKind, Layout, LoadError, Outcome, Process, ProcessOptions, QuarantineConfig,
    QuarantineReason, QuarantineStatus, RestoreError, RunResult, ViolationLog, ViolationPolicy,
    ViolationRecord,
};
pub use vm::{Event, Vm, VmError, VmState, VmStats};

#[cfg(test)]
mod tests {
    use super::*;
    use mcfi_codegen::{compile_source, CodegenOptions, Policy};
    use mcfi_module::Module;

    fn compile(name: &str, src: &str) -> Module {
        compile_source(name, src, &CodegenOptions::default()).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a process with syscall stubs, libms, the startup module,
    /// and the given program source.
    fn boot(src: &str) -> Process {
        boot_with(src, &CodegenOptions::default())
    }

    fn boot_with(src: &str, opts: &CodegenOptions) -> Process {
        boot_full(src, opts, ProcessOptions::default())
    }

    fn boot_full(src: &str, opts: &CodegenOptions, popts: ProcessOptions) -> Process {
        let mut p = Process::new(popts).expect("valid layout");
        let stubs = synth::syscall_module();
        let libms = compile_source("libms", stdlib::LIBMS_SRC, opts).unwrap();
        let start = compile_source("start", stdlib::START_SRC, opts).unwrap();
        let prog = compile_source("prog", src, opts).unwrap_or_else(|e| panic!("{e}"));
        p.load_all(vec![stubs, libms, start, prog]).unwrap_or_else(|e| panic!("{e}"));
        p
    }

    fn run(src: &str) -> RunResult {
        let mut p = boot(src);
        p.run("__start").unwrap()
    }

    #[test]
    fn runs_a_trivial_program() {
        let r = run("int main(void) { return 42; }");
        assert_eq!(r.outcome, Outcome::Exit { code: 42 });
        assert!(r.cycles > 0);
    }

    #[test]
    fn arithmetic_and_loops_compute() {
        let r = run(
            "int main(void) {\n\
               int sum = 0; int i = 1;\n\
               while (i <= 10) { sum = sum + i; i = i + 1; }\n\
               return sum;\n\
             }",
        );
        assert_eq!(r.outcome, Outcome::Exit { code: 55 });
    }

    #[test]
    fn recursion_works_through_instrumented_returns() {
        let r = run(
            "int fib(int n) { if (n < 2) { return n; } int a = fib(n - 1); int b = fib(n - 2); return a + b; }\n\
             int main(void) { return fib(12); }",
        );
        assert_eq!(r.outcome, Outcome::Exit { code: 144 });
        assert!(r.checks > 100, "every return runs a check transaction");
    }

    #[test]
    fn indirect_calls_execute_when_types_match() {
        let r = run(
            "int twice(int x) { return x * 2; }\n\
             int thrice(int x) { return x * 3; }\n\
             int main(void) {\n\
               int (*f)(int);\n\
               f = &twice;\n\
               int a = f(10);\n\
               f = &thrice;\n\
               int b = f(10);\n\
               return a + b;\n\
             }",
        );
        assert_eq!(r.outcome, Outcome::Exit { code: 50 });
    }

    #[test]
    fn stdout_is_captured() {
        let r = run(
            "int puts(char* s);\n\
             int main(void) { puts(\"hello mcfi\"); return 0; }",
        );
        assert_eq!(r.outcome, Outcome::Exit { code: 0 });
        assert_eq!(r.stdout, "hello mcfi\n");
    }

    #[test]
    fn print_int_formats_numbers() {
        let r = run(
            "int print_int(int x);\nint puts(char* s);\n\
             int main(void) { print_int(-12345); puts(\"\"); print_int(0); return 0; }",
        );
        assert_eq!(r.stdout, "-12345\n0");
    }

    #[test]
    fn malloc_provides_usable_memory() {
        let r = run(
            "void* malloc(int n);\n\
             int main(void) {\n\
               int* a = (int*)malloc(80);\n\
               int i = 0;\n\
               while (i < 10) { a[i] = i * i; i = i + 1; }\n\
               return a[7];\n\
             }",
        );
        assert_eq!(r.outcome, Outcome::Exit { code: 49 });
    }

    #[test]
    fn structs_and_function_pointer_fields() {
        let r = run(
            "struct ops { int (*apply)(int); int bias; };\n\
             void* malloc(int n);\n\
             int inc(int x) { return x + 1; }\n\
             int main(void) {\n\
               struct ops* o = (struct ops*)malloc(16);\n\
               o->apply = &inc;\n\
               o->bias = 5;\n\
               int r = o->apply(10);\n\
               return r + o->bias;\n\
             }",
        );
        assert_eq!(r.outcome, Outcome::Exit { code: 16 });
    }

    #[test]
    fn switch_dispatch_via_jump_table() {
        let r = run(
            "int classify(int x) {\n\
               switch (x) {\n\
                 case 0: return 10;\n\
                 case 1: return 20;\n\
                 case 2: return 30;\n\
                 case 3: return 40;\n\
                 default: return -1;\n\
               }\n\
               return 0;\n\
             }\n\
             int main(void) { return classify(2) + classify(9); }",
        );
        assert_eq!(r.outcome, Outcome::Exit { code: 29 });
    }

    #[test]
    fn setjmp_longjmp_transfers_control() {
        let r = run(
            "int buf[8];\n\
             void leap(void) { longjmp(buf, 7); }\n\
             int main(void) {\n\
               int v = setjmp(buf);\n\
               if (v) { return v; }\n\
               leap();\n\
               return 0;\n\
             }",
        );
        assert_eq!(r.outcome, Outcome::Exit { code: 7 });
    }

    #[test]
    fn float_arithmetic_round_trips() {
        let r = run("int main(void) { float x = 2.5; float y = x * 4.0; return (int)y; }");
        assert_eq!(r.outcome, Outcome::Exit { code: 10 });
    }

    #[test]
    fn cfi_blocks_wrongly_typed_indirect_call() {
        // K2-style round trip through void*: the call through an int(int)
        // pointer actually targeting a float(float) function violates the
        // type-matched CFG.
        let r = run(
            "float fsq(float x) { return x * x; }\n\
             int main(void) {\n\
               void* raw = (void*)&fsq;\n\
               int (*f)(int) = (int(*)(int))raw;\n\
               return f(3);\n\
             }",
        );
        assert!(
            matches!(r.outcome, Outcome::CfiViolation { .. }),
            "expected violation, got {:?}",
            r.outcome
        );
    }

    #[test]
    fn nocfi_allows_the_same_wrongly_typed_call() {
        let opts = CodegenOptions { policy: Policy::NoCfi, tail_calls: true };
        let mut p = boot_with(
            "float fsq(float x) { return x * x; }\n\
             int main(void) {\n\
               void* raw = (void*)&fsq;\n\
               int (*f)(int) = (int(*)(int))raw;\n\
               int r = f(3);\n\
               return 1;\n\
             }",
            &opts,
        );
        let r = p.run("__start").unwrap();
        assert_eq!(r.outcome, Outcome::Exit { code: 1 }, "{:?}", r.outcome);
    }

    #[test]
    fn attacker_corrupting_return_address_is_caught() {
        // The concurrent attacker overwrites the saved return address on
        // the stack with a function entry (a classic ROP pivot). Under
        // MCFI the return's check transaction halts the program.
        let src = "int victim(int x) { return x + 1; }\n\
                   int main(void) { int r = victim(1); int s = victim(r); return s; }";
        let mut p = boot(src);
        let target = p.symbol("main").unwrap();
        let stack_lo = 0x40_0000 - 0x1_0000;
        let r = p
            .run_with_attacker("__start", move |_step, mem, regs| {
                // Scribble over the top of the stack on every step: any
                // saved return address becomes a pointer to main's entry.
                let rsp = regs[mcfi_machine::Reg::Rsp.index()] as usize;
                if rsp >= stack_lo && rsp + 64 <= mem.len() {
                    for w in (rsp..rsp + 64).step_by(8) {
                        mem[w..w + 8].copy_from_slice(&target.to_le_bytes());
                    }
                }
            })
            .unwrap();
        // main's entry is never a legal return target; MCFI halts.
        assert!(
            matches!(r.outcome, Outcome::CfiViolation { .. }),
            "expected violation, got {:?}",
            r.outcome
        );
    }

    #[test]
    fn dlopen_loads_library_and_updates_policy() {
        let lib = compile("libplug", "int plug_value(int x) { return x * 11; }");
        let src = "int dlopen(char* name);\n\
                   void* dlsym(char* name);\n\
                   int main(void) {\n\
                     int ok = dlopen(\"libplug\");\n\
                     if (!ok) { return -1; }\n\
                     int (*f)(int) = (int(*)(int))dlsym(\"plug_value\");\n\
                     if (!f) { return -2; }\n\
                     return f(4);\n\
                   }";
        let mut p = boot(src);
        p.register_library("libplug", lib);
        let r = p.run("__start").unwrap();
        assert_eq!(r.outcome, Outcome::Exit { code: 44 }, "stdout: {}", r.stdout);
        assert!(r.updates >= 1, "dlopen must run an update transaction");
    }

    #[test]
    fn dlopen_of_missing_library_fails_cleanly() {
        let src = "int dlopen(char* name);\n\
                   int main(void) { return dlopen(\"nope\"); }";
        let r = {
            let mut p = boot(src);
            p.run("__start").unwrap()
        };
        assert_eq!(r.outcome, Outcome::Exit { code: 0 });
    }

    #[test]
    fn plt_routed_call_works_after_dlopen() {
        // The program calls an undefined function directly; the loader
        // routes it through an instrumented PLT entry whose GOT slot is
        // bound during dlopen's update transaction.
        let lib = compile("libm2", "int provided(int x) { return x + 100; }");
        let src = "int provided(int x);\n\
                   int dlopen(char* name);\n\
                   int main(void) {\n\
                     int ok = dlopen(\"libm2\");\n\
                     if (!ok) { return -1; }\n\
                     int r = provided(5);\n\
                     return r;\n\
                   }";
        let mut p = boot(src);
        p.register_library("libm2", lib);
        let r = p.run("__start").unwrap();
        assert_eq!(r.outcome, Outcome::Exit { code: 105 }, "stdout: {}", r.stdout);
    }

    #[test]
    fn plt_call_before_binding_is_a_violation() {
        let src = "int provided(int x);\n\
                   int main(void) { int r = provided(5); return r; }";
        let mut p = boot(src);
        let r = p.run("__start").unwrap();
        assert!(matches!(r.outcome, Outcome::CfiViolation { .. }), "{:?}", r.outcome);
    }

    #[test]
    fn execve_probe_records_reachability() {
        let r = run(
            "int execve(char* path);\n\
             int main(void) { int r = execve(\"/bin/sh\"); return r; }",
        );
        assert!(r.execve_reached);
    }

    #[test]
    fn concurrent_updater_thread_does_not_break_execution() {
        // Fig. 6's mechanism: a real thread re-stamps all ID versions
        // while the VM executes check transactions against the same
        // atomics. Execution must stay correct (retries, not corruption).
        let src = "int work(int x) { return x * 2 + 1; }\n\
                   int main(void) {\n\
                     int acc = 0; int i = 0;\n\
                     int (*f)(int) = &work;\n\
                     while (i < 20000) { acc = acc + f(i); i = i + 1; }\n\
                     return acc % 97;\n\
                   }";
        let mut p = boot(src);
        let tables = p.tables();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        let updater = std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                tables.bump_version();
                n += 1;
                std::thread::yield_now();
            }
            n
        });
        let r = p.run("__start").unwrap();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let updates = updater.join().unwrap();
        assert!(matches!(r.outcome, Outcome::Exit { .. }), "{:?}", r.outcome);
        assert!(updates > 0);
    }

    #[test]
    fn tail_call_heavy_code_executes_correctly() {
        let r = run(
            "int even(int n);\n\
             int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }\n\
             int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }\n\
             int main(void) { return even(100) + odd(99); }",
        );
        assert_eq!(r.outcome, Outcome::Exit { code: 2 });
    }

    #[test]
    fn for_loops_run_with_c_continue_semantics() {
        let r = run(
            "int main(void) {\n\
               int s = 0;\n\
               for (int i = 0; i < 10; i = i + 1) {\n\
                 if (i % 2 == 0) { continue; }\n\
                 s = s + i;\n\
               }\n\
               return s;\n\
             }",
        );
        // 1 + 3 + 5 + 7 + 9 = 25: `continue` must still run the step.
        assert_eq!(r.outcome, Outcome::Exit { code: 25 });
    }

    #[test]
    fn loader_rejects_oversized_code() {
        let mut opts = ProcessOptions::default();
        opts.layout.code_limit = opts.layout.code_base + 256; // tiny code region
        let mut p = Process::new(opts).expect("valid layout");
        let libms = compile("libms", stdlib::LIBMS_SRC);
        let err = p.load(libms).unwrap_err();
        assert!(matches!(err, LoadError::OutOfSpace("code")), "{err}");
    }

    #[test]
    fn loader_rejects_bary_overflow() {
        let mut p = Process::new(ProcessOptions { bary_capacity: 1, ..Default::default() }).expect("valid layout");
        let m = compile("m", "int a(void) { return 1; }\nint b(void) { return 2; }");
        let err = p.load(m).unwrap_err();
        assert!(matches!(err, LoadError::BaryOverflow), "{err}");
    }

    #[test]
    fn loader_rejects_unresolved_address_taken_import() {
        // Taking the address of a function no loaded module defines cannot
        // be deferred (there is no PLT for data relocations): load fails.
        let mut p = Process::new(ProcessOptions::default()).expect("valid layout");
        let m = compile(
            "m",
            "int ghost(int x);\nint (*g)(int) = ghost;\nint main(void) { return 0; }",
        );
        let err = p.load(m).unwrap_err();
        assert!(matches!(err, LoadError::Unresolved(ref n) if n == "ghost"), "{err}");
    }

    /// Every observable field of a run must be byte-identical with the
    /// predecode cache on and off — the cache is a pure fetch memo.
    fn assert_observably_identical(cached: &RunResult, uncached: &RunResult, what: &str) {
        assert_eq!(cached.outcome, uncached.outcome, "{what}: outcome");
        assert_eq!(cached.steps, uncached.steps, "{what}: steps");
        assert_eq!(cached.cycles, uncached.cycles, "{what}: cycles");
        assert_eq!(cached.checks, uncached.checks, "{what}: checks");
        assert_eq!(cached.indirect_taken, uncached.indirect_taken, "{what}: indirect_taken");
        assert_eq!(cached.stdout, uncached.stdout, "{what}: stdout");
        assert_eq!(cached.updates, uncached.updates, "{what}: updates");
        assert_eq!(uncached.icache_hits, 0, "{what}: uncached runs must not touch the cache");
        assert!(cached.icache_hits > 0, "{what}: cached runs must actually hit");
    }

    #[test]
    fn cached_and_uncached_runs_are_observably_identical() {
        let programs: &[(&str, &str)] = &[
            ("trivial", "int main(void) { return 42; }"),
            (
                "fib",
                "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
                 int main(void) { return fib(12); }",
            ),
            (
                "indirect",
                "int twice(int x) { return x * 2; }\n\
                 int main(void) { int (*f)(int); f = &twice; return f(21); }",
            ),
            (
                "switch",
                "int classify(int x) {\n\
                   switch (x) { case 0: return 10; case 1: return 20; default: return -1; }\n\
                   return 0;\n\
                 }\n\
                 int main(void) { return classify(1) + classify(7); }",
            ),
            (
                "stdout",
                "int puts(char* s);\nint main(void) { puts(\"hello mcfi\"); return 0; }",
            ),
            (
                "violation",
                "float fsq(float x) { return x * x; }\n\
                 int main(void) {\n\
                   void* raw = (void*)&fsq;\n\
                   int (*f)(int) = (int(*)(int))raw;\n\
                   return f(3);\n\
                 }",
            ),
        ];
        for (name, src) in programs {
            let opts = CodegenOptions::default();
            let cached = boot_full(src, &opts, ProcessOptions::default()).run("__start").unwrap();
            let uncached =
                boot_full(src, &opts, ProcessOptions { predecode: false, ..Default::default() })
                    .run("__start")
                    .unwrap();
            assert_observably_identical(&cached, &uncached, name);
        }
    }

    #[test]
    fn dlopen_code_patching_is_identical_cached_and_uncached() {
        // The invalidation stress: dlopen maps code writable, patches it
        // (relocations, Bary-slot immediates, GOT binding during the
        // update transaction), and flips it executable — all after the
        // cache has been built and PLT code has already executed. The
        // cached run must re-decode everything the loader touched.
        let src = "int provided(int x);\n\
                   int dlopen(char* name);\n\
                   int main(void) {\n\
                     int ok = dlopen(\"libm2\");\n\
                     if (!ok) { return -1; }\n\
                     int r = provided(5);\n\
                     return r;\n\
                   }";
        let run_mode = |predecode: bool| {
            let lib = compile("libm2", "int provided(int x) { return x + 100; }");
            let mut p = boot_full(
                src,
                &CodegenOptions::default(),
                ProcessOptions { predecode, ..Default::default() },
            );
            p.register_library("libm2", lib);
            p.run("__start").unwrap()
        };
        let cached = run_mode(true);
        let uncached = run_mode(false);
        assert_eq!(cached.outcome, Outcome::Exit { code: 105 }, "stdout: {}", cached.stdout);
        assert_observably_identical(&cached, &uncached, "plt-after-dlopen");
        assert!(
            cached.icache_invalidations >= 2,
            "the initial build plus the dlopen must each rebuild, got {}",
            cached.icache_invalidations
        );
    }

    #[test]
    fn run_with_updates_is_identical_cached_and_uncached() {
        let src = "int work(int x) { return x * 2 + 1; }\n\
                   int main(void) {\n\
                     int acc = 0; int i = 0;\n\
                     int (*f)(int) = &work;\n\
                     while (i < 500) { acc = acc + f(i); i = i + 1; }\n\
                     return acc % 97;\n\
                   }";
        let run_mode = |predecode: bool| {
            boot_full(
                src,
                &CodegenOptions::default(),
                ProcessOptions { predecode, ..Default::default() },
            )
            .run_with_updates("__start", 5_000, 200)
            .unwrap()
        };
        let cached = run_mode(true);
        let uncached = run_mode(false);
        assert!(cached.updates > 0, "the scripted updater must fire");
        assert_observably_identical(&cached, &uncached, "scripted-updates");
    }

    /// The architectural-equality contract for the baseline-compiled
    /// tier: everything the guest or a profiler can observe must match
    /// the interpreter exactly; only the tier's own counters differ.
    fn assert_arch_identical(translated: &RunResult, interpreted: &RunResult, what: &str) {
        assert_eq!(translated.outcome, interpreted.outcome, "{what}: outcome");
        assert_eq!(translated.steps, interpreted.steps, "{what}: steps");
        assert_eq!(translated.cycles, interpreted.cycles, "{what}: cycles");
        assert_eq!(translated.checks, interpreted.checks, "{what}: checks");
        assert_eq!(translated.indirect_taken, interpreted.indirect_taken, "{what}: indirect");
        assert_eq!(translated.stdout, interpreted.stdout, "{what}: stdout");
        assert_eq!(translated.updates, interpreted.updates, "{what}: updates");
        assert_eq!(translated.check_retries, interpreted.check_retries, "{what}: check retries");
        assert_eq!(
            interpreted.trans_dispatches, 0,
            "{what}: interpreter runs must not touch the translated tier"
        );
        assert!(translated.trans_dispatches > 0, "{what}: translated runs must dispatch blocks");
        assert!(translated.trans_translations > 0, "{what}: blocks must actually be lowered");
    }

    #[test]
    fn translated_and_interpreted_runs_are_observably_identical() {
        let programs: &[(&str, &str)] = &[
            ("trivial", "int main(void) { return 42; }"),
            (
                "fib",
                "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
                 int main(void) { return fib(12); }",
            ),
            (
                "indirect",
                "int twice(int x) { return x * 2; }\n\
                 int main(void) { int (*f)(int); f = &twice; return f(21); }",
            ),
            (
                "switch",
                "int classify(int x) {\n\
                   switch (x) { case 0: return 10; case 1: return 20; default: return -1; }\n\
                   return 0;\n\
                 }\n\
                 int main(void) { return classify(1) + classify(7); }",
            ),
            (
                "stdout",
                "int puts(char* s);\nint main(void) { puts(\"hello mcfi\"); return 0; }",
            ),
            (
                "violation",
                "float fsq(float x) { return x * x; }\n\
                 int main(void) {\n\
                   void* raw = (void*)&fsq;\n\
                   int (*f)(int) = (int(*)(int))raw;\n\
                   return f(3);\n\
                 }",
            ),
        ];
        for (name, src) in programs {
            let opts = CodegenOptions::default();
            let translated =
                boot_full(src, &opts, ProcessOptions { translate: true, ..Default::default() })
                    .run("__start")
                    .unwrap();
            let interpreted = boot_full(src, &opts, ProcessOptions::default())
                .run("__start")
                .unwrap();
            assert_arch_identical(&translated, &interpreted, name);
        }
    }

    #[test]
    fn translated_scripted_updates_are_identical_to_interpreted() {
        // Version churn is the TxCheck fast path's worst case: inside
        // every update window the Bary and Tary words disagree, the
        // specialized check misses, and the slow path (single-step
        // interpretation, guest retry loop) must replay exactly.
        let src = "int work(int x) { return x * 2 + 1; }\n\
                   int main(void) {\n\
                     int acc = 0; int i = 0;\n\
                     int (*f)(int) = &work;\n\
                     while (i < 500) { acc = acc + f(i); i = i + 1; }\n\
                     return acc % 97;\n\
                   }";
        let run_mode = |translate: bool| {
            boot_full(
                src,
                &CodegenOptions::default(),
                ProcessOptions { translate, ..Default::default() },
            )
            .run_with_updates("__start", 5_000, 200)
            .unwrap()
        };
        let translated = run_mode(true);
        let interpreted = run_mode(false);
        assert!(translated.updates > 0, "the scripted updater must fire");
        assert_arch_identical(&translated, &interpreted, "scripted-updates");
        assert!(
            translated.trans_fallbacks > 0,
            "update windows must force specialized-check misses"
        );
    }

    #[test]
    fn dlopen_mid_run_deopts_and_lazily_retranslates() {
        // The deopt boundary: dlopen bumps the sandbox generation while
        // translated blocks are live, which must retire them all; the
        // post-load code (PLT re-binding included) then retranslates
        // lazily — and the whole thing stays byte-identical to the
        // interpreter.
        let src = "int provided(int x);\n\
                   int dlopen(char* name);\n\
                   int spin(int n) { int a = 0; int i = 0;\n\
                     while (i < n) { a = a + i; i = i + 1; } return a; }\n\
                   int main(void) {\n\
                     int warm = spin(200);\n\
                     int ok = dlopen(\"libm2\");\n\
                     if (!ok) { return -1; }\n\
                     int r = provided(5) + spin(100) - warm;\n\
                     return r % 125;\n\
                   }";
        let run_mode = |translate: bool| {
            let lib = compile("libm2", "int provided(int x) { return x + 100; }");
            let mut p = boot_full(
                src,
                &CodegenOptions::default(),
                ProcessOptions { translate, ..Default::default() },
            );
            p.register_library("libm2", lib);
            p.run("__start").unwrap()
        };
        let translated = run_mode(true);
        let interpreted = run_mode(false);
        assert_arch_identical(&translated, &interpreted, "dlopen-deopt");
        assert!(
            translated.trans_deopts >= 1,
            "dlopen must retire live translated blocks, got {} deopts",
            translated.trans_deopts
        );
        assert!(
            translated.trans_retranslations >= 1,
            "post-dlopen execution must retranslate lazily, got {}",
            translated.trans_retranslations
        );
    }

    #[test]
    fn trans_invalidate_chaos_point_forces_mid_run_deopt() {
        use mcfi_chaos::{FaultPlan, FaultPoint};
        // The `puts` in the middle is load-bearing: its syscall breaks
        // the dispatch chain, so the run has a second translated
        // loop-top where the armed fault can fire with blocks live.
        let src = "int puts(char* s);\n\
                   int main(void) {\n\
                     int acc = 0; int i = 0;\n\
                     while (i < 150) { acc = acc + i; i = i + 1; }\n\
                     puts(\"mid\");\n\
                     while (i < 300) { acc = acc + i; i = i + 1; }\n\
                     return acc % 89;\n\
                   }";
        let run_mode = |translate: bool| {
            let mut p = boot_full(
                src,
                &CodegenOptions::default(),
                ProcessOptions { translate, ..Default::default() },
            );
            // Force-deopt on the second translated loop-top: after the
            // first chain has translated blocks, so they are live.
            p.arm_chaos(FaultPlan::new().with(FaultPoint::TransInvalidate, 2, 0));
            p.run("__start").unwrap()
        };
        let translated = run_mode(true);
        let interpreted = run_mode(false);
        assert_arch_identical(&translated, &interpreted, "trans-invalidate");
        assert!(
            translated.trans_deopts >= 1,
            "the chaos point must retire live blocks, got {} deopts",
            translated.trans_deopts
        );
        assert!(
            translated.trans_retranslations >= 1,
            "the loop must retranslate after the forced deopt, got {}",
            translated.trans_retranslations
        );
    }

    #[test]
    fn restored_uncached_run_reports_zero_cache_counters() {
        // Regression: a checkpoint captured during a cached run stores
        // the VM stats — icache counters included — inside its VmState.
        // Restoring it and resuming under a configuration that never
        // touches a cache (here the always-uncached attacker driver)
        // used to report the stale counters; the run loop must zero
        // whatever its own configuration cannot produce.
        let src = "int main(void) {\n\
                     int acc = 0; int i = 0;\n\
                     while (i < 2000) { acc = acc + i; i = i + 1; }\n\
                     return acc % 101;\n\
                   }";
        let mut p = boot_full(
            src,
            &CodegenOptions::default(),
            ProcessOptions { checkpoint_interval: 1_000, ..Default::default() },
        );
        let first = p.run("__start").unwrap();
        assert!(first.icache_hits > 0, "the cached run must hit");
        assert!(p.checkpoints_taken() > 0, "the run must checkpoint");
        let cp = p.checkpoints().last().expect("checkpoint captured").clone();
        p.restore(&cp).expect("restore succeeds");
        let resumed = p.run_with_attacker("__start", |_, _, _| {}).unwrap();
        assert_eq!(resumed.outcome, first.outcome, "resumed run finishes the program");
        assert_eq!(resumed.icache_hits, 0, "uncached resumption must report zero hits");
        assert_eq!(resumed.icache_misses, 0, "uncached resumption must report zero misses");
        assert_eq!(resumed.trans_dispatches, 0, "untranslated resumption: zero dispatches");
    }

    #[test]
    fn step_limit_terminates_infinite_loops() {
        let mut p = Process::new(ProcessOptions { max_steps: 10_000, ..Default::default() })
            .expect("valid layout");
        let stubs = synth::syscall_module();
        let libms = compile("libms", stdlib::LIBMS_SRC);
        let start = compile("start", stdlib::START_SRC);
        let prog = compile("prog", "int main(void) { while (1) { } return 0; }");
        p.load_all(vec![stubs, libms, start, prog]).unwrap();
        let r = p.run("__start").unwrap();
        assert_eq!(r.outcome, Outcome::StepLimit);
    }
}
