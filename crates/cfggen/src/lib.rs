//! Type-matching CFG generation (paper §6) and equivalence-class
//! construction (paper §2).
//!
//! Given a set of loaded modules (code base + auxiliary type information),
//! [`generate`] produces the [`ControlFlowPolicy`] the runtime installs
//! into the ID tables:
//!
//! * an **indirect call** through a pointer of type `τ*` may target any
//!   address-taken function whose type structurally matches `τ`
//!   (variadic pointers match on return type + fixed-parameter prefix);
//! * a **return** in function `f` may target the return site after any
//!   call that can reach `f` — direct calls by name, indirect calls by
//!   signature match, and transitively through tail calls;
//! * an **indirect tail call** is handled like an indirect call;
//! * a **PLT entry** targets exactly the function with the matching name;
//! * **`longjmp`** may target any `setjmp` landing site;
//! * `switch` jump tables are *not* in the policy: they are read-only and
//!   statically verified instead.
//!
//! Target addresses are then partitioned into equivalence classes: two
//! addresses are equivalent if some branch can jump to both, so branches
//! with overlapping target sets have their sets merged (the precision
//! loss the paper accepts for a single-comparison check). Each class gets
//! an ECN; Table 3's `IBs`/`IBTs`/`EQCs` come from [`CfgStats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mcfi_minic::types::{FuncType, TypeEnv};
use mcfi_module::{BranchKind, CalleeKind, Module};

/// One module placed in the address space.
#[derive(Clone, Copy, Debug)]
pub struct Placed<'a> {
    /// The module.
    pub module: &'a Module,
    /// Where its code was loaded.
    pub code_base: u64,
}

/// Policy for one indirect branch (one global Bary slot).
#[derive(Clone, Debug)]
pub struct BranchPolicy {
    /// Index of the owning module in the input order.
    pub module: usize,
    /// The branch's module-local slot.
    pub local_slot: u32,
    /// Assigned equivalence-class number.
    pub ecn: u32,
    /// The branch's raw target set (before class merging), absolute.
    pub targets: BTreeSet<u64>,
}

/// Aggregate statistics — one row of the paper's Table 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CfgStats {
    /// Instrumented indirect branches.
    pub ibs: usize,
    /// Possible indirect-branch targets.
    pub ibts: usize,
    /// Equivalence classes of addresses.
    pub eqcs: usize,
}

/// The generated control-flow policy: what the ID tables enforce.
#[derive(Clone, Debug, Default)]
pub struct ControlFlowPolicy {
    /// ECN for every possible indirect-branch target address.
    pub tary: BTreeMap<u64, u32>,
    /// Per-branch policy, indexed by *global* Bary slot.
    pub bary: Vec<BranchPolicy>,
    /// Table 3 statistics.
    pub stats: CfgStats,
}

impl ControlFlowPolicy {
    /// Members of the equivalence class `ecn`.
    pub fn class_members(&self, ecn: u32) -> impl Iterator<Item = u64> + '_ {
        self.tary.iter().filter(move |(_, e)| **e == ecn).map(|(a, _)| *a)
    }

    /// The global Bary slot of a module-local branch.
    pub fn global_slot(&self, module: usize, local_slot: u32) -> Option<usize> {
        self.bary
            .iter()
            .position(|b| b.module == module && b.local_slot == local_slot)
    }
}

/// A resolved function: where it lives and what the policy knows about it.
#[derive(Clone, Debug)]
struct FuncInfo {
    entry: u64,
    sig: FuncType,
    address_taken: bool,
}

/// Key for functions: static functions are module-scoped, exported ones
/// are global.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum FuncKey {
    Global(String),
    Local(usize, String),
}

/// Generates the control-flow policy for a set of linked modules.
///
/// The merged type environment is the union of the modules' environments
/// ("combining type information of multiple modules during linking is a
/// simple union operation", §6).
///
/// # Panics
///
/// Panics if two modules export clashing type definitions — the linker
/// rejects such inputs before calling this.
pub fn generate(placed: &[Placed<'_>]) -> ControlFlowPolicy {
    let mut env = TypeEnv::new();
    for p in placed {
        env.merge(&p.module.aux.env)
            .expect("linker verified type environments before CFG generation");
    }

    // ---- resolve functions ----
    let mut funcs: BTreeMap<FuncKey, FuncInfo> = BTreeMap::new();
    for (mi, p) in placed.iter().enumerate() {
        for (name, sym) in &p.module.functions {
            if sym.size == 0 {
                continue; // declaration only
            }
            let key = if sym.is_static {
                FuncKey::Local(mi, name.clone())
            } else {
                FuncKey::Global(name.clone())
            };
            funcs.insert(key, FuncInfo {
                entry: p.code_base + sym.offset as u64,
                sig: sym.sig.clone(),
                address_taken: sym.address_taken,
            });
        }
    }
    // Address-taken-ness is a whole-program property: a module may export a
    // function whose address is taken by *another* module's code. The
    // per-module flag is unioned here via imports + FuncAbs relocations.
    let mut taken_names: BTreeSet<String> = BTreeSet::new();
    for p in placed {
        for r in p.module.relocs.iter().chain(&p.module.data_relocs) {
            if let mcfi_module::RelocKind::FuncAbs(n) = &r.kind {
                taken_names.insert(n.clone());
            }
        }
    }
    for (key, info) in &mut funcs {
        let name = match key {
            FuncKey::Global(n) | FuncKey::Local(_, n) => n,
        };
        if taken_names.contains(name) && matches!(key, FuncKey::Global(_)) {
            info.address_taken = true;
        }
        let _ = name;
    }

    let resolve = |mi: usize, name: &str| -> Option<FuncKey> {
        let local = FuncKey::Local(mi, name.to_string());
        if funcs.contains_key(&local) {
            return Some(local);
        }
        let global = FuncKey::Global(name.to_string());
        funcs.contains_key(&global).then_some(global)
    };

    // ---- call sites (return-site map) ----
    // sites[k] = aligned return addresses following calls to function k.
    let mut direct_sites: HashMap<FuncKey, BTreeSet<u64>> = HashMap::new();
    let mut indirect_sites: Vec<(FuncType, u64)> = Vec::new();
    let mut setjmp_sites: BTreeSet<u64> = BTreeSet::new();
    for (mi, p) in placed.iter().enumerate() {
        for site in &p.module.aux.return_sites {
            let addr = p.code_base + site.offset as u64;
            match &site.callee {
                CalleeKind::Direct(name) => {
                    if let Some(key) = resolve(mi, name) {
                        direct_sites.entry(key).or_default().insert(addr);
                    }
                }
                CalleeKind::Indirect(sig) => indirect_sites.push((sig.clone(), addr)),
                CalleeKind::SetJmp => {
                    setjmp_sites.insert(addr);
                }
            }
        }
    }

    // ---- tail-call graph (callee -> tail-callers) ----
    let mut tail_preds: HashMap<FuncKey, Vec<FuncKey>> = HashMap::new();
    let mut indirect_tail_callers: Vec<(FuncType, FuncKey)> = Vec::new();
    for (mi, p) in placed.iter().enumerate() {
        for (from, to) in &p.module.aux.tail_calls {
            if let (Some(fk), Some(tk)) = (resolve(mi, from), resolve(mi, to)) {
                tail_preds.entry(tk).or_default().push(fk);
            }
        }
        for b in &p.module.aux.indirect_branches {
            if let BranchKind::IndirectTailCall { sig } = &b.kind {
                if let Some(fk) = resolve(mi, &b.in_function) {
                    indirect_tail_callers.push((sig.clone(), fk));
                }
            }
        }
    }

    // Return targets of `f`: sites after calls to any member of the
    // tail-caller closure of f (including f itself).
    let return_targets = |fkey: &FuncKey, finfo: &FuncInfo| -> BTreeSet<u64> {
        let mut closure: BTreeSet<FuncKey> = BTreeSet::new();
        let mut work = vec![fkey.clone()];
        while let Some(k) = work.pop() {
            if !closure.insert(k.clone()) {
                continue;
            }
            if let Some(preds) = tail_preds.get(&k) {
                work.extend(preds.iter().cloned());
            }
            // Indirect tail calls reach k when k is address-taken and the
            // pointer signature matches.
            let kinfo = &funcs[&k];
            if kinfo.address_taken {
                for (sig, caller) in &indirect_tail_callers {
                    if env.call_compatible(sig, &kinfo.sig) {
                        work.push(caller.clone());
                    }
                }
            }
        }
        let mut out = BTreeSet::new();
        for k in &closure {
            if let Some(sites) = direct_sites.get(k) {
                out.extend(sites.iter().copied());
            }
            let kinfo = &funcs[k];
            if kinfo.address_taken {
                for (sig, addr) in &indirect_sites {
                    if env.call_compatible(sig, &kinfo.sig) {
                        out.insert(*addr);
                    }
                }
            }
        }
        let _ = finfo;
        out
    };

    // Matching AT functions for a pointer signature.
    let matching_entries = |sig: &FuncType| -> BTreeSet<u64> {
        funcs
            .values()
            .filter(|f| f.address_taken && env.call_compatible(sig, &f.sig))
            .map(|f| f.entry)
            .collect()
    };

    // ---- per-branch target sets, global slot order ----
    let mut bary = Vec::new();
    for (mi, p) in placed.iter().enumerate() {
        for b in &p.module.aux.indirect_branches {
            let targets = match &b.kind {
                BranchKind::Return { function } => match resolve(mi, function) {
                    Some(key) => {
                        let info = funcs[&key].clone();
                        return_targets(&key, &info)
                    }
                    None => BTreeSet::new(),
                },
                BranchKind::IndirectCall { sig } | BranchKind::IndirectTailCall { sig } => {
                    matching_entries(sig)
                }
                BranchKind::PltEntry { symbol } => {
                    match funcs.get(&FuncKey::Global(symbol.clone())) {
                        Some(f) => [f.entry].into_iter().collect(),
                        None => BTreeSet::new(),
                    }
                }
                BranchKind::LongJmp => setjmp_sites.clone(),
            };
            bary.push(BranchPolicy {
                module: mi,
                local_slot: b.local_slot,
                ecn: 0, // assigned below
                targets,
            });
        }
    }

    // ---- equivalence classes: union-find over target addresses ----
    let all_targets: Vec<u64> = {
        let mut s = BTreeSet::new();
        for b in &bary {
            s.extend(b.targets.iter().copied());
        }
        s.into_iter().collect()
    };
    let index_of: HashMap<u64, usize> =
        all_targets.iter().enumerate().map(|(i, a)| (*a, i)).collect();
    let mut uf = UnionFind::new(all_targets.len());
    for b in &bary {
        let mut iter = b.targets.iter();
        if let Some(first) = iter.next() {
            let fi = index_of[first];
            for t in iter {
                uf.union(fi, index_of[t]);
            }
        }
    }

    // Dense ECN numbering per class root.
    let mut ecn_of_root: HashMap<usize, u32> = HashMap::new();
    let mut tary = BTreeMap::new();
    for (i, addr) in all_targets.iter().enumerate() {
        let root = uf.find(i);
        let next = ecn_of_root.len() as u32;
        let ecn = *ecn_of_root.entry(root).or_insert(next);
        tary.insert(*addr, ecn);
    }
    let mut next_ecn = ecn_of_root.len() as u32;
    for b in &mut bary {
        b.ecn = match b.targets.iter().next() {
            Some(t) => tary[t],
            None => {
                // A branch with no legal targets gets a fresh, empty class:
                // every transfer through it is a violation.
                let e = next_ecn;
                next_ecn += 1;
                e
            }
        };
    }

    let stats = CfgStats {
        ibs: bary.len(),
        ibts: all_targets.len(),
        eqcs: ecn_of_root.len(),
    };
    ControlFlowPolicy { tary, bary, stats }
}

/// Convenience for single-module programs.
pub fn generate_single(module: &Module, code_base: u64) -> ControlFlowPolicy {
    generate(&[Placed { module, code_base }])
}

/// A plain union-find over dense indices.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n] }
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns the new root.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        hi
    }
}

/// Converts a policy into the `getTaryECN`/`getBaryECN` closures used by
/// an update transaction (paper Fig. 3), relative to `code_base` — table
/// indices are sandbox-absolute addresses divided down by the runtime.
pub fn policy_lookups(
    policy: &ControlFlowPolicy,
) -> (
    impl Fn(u64) -> Option<u32> + '_,
    impl Fn(usize) -> Option<u32> + '_,
) {
    let tary = move |addr: u64| policy.tary.get(&addr).copied();
    let bary = move |slot: usize| policy.bary.get(slot).map(|b| b.ecn);
    (tary, bary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfi_codegen::{compile_source, CodegenOptions};

    fn policy_of(src: &str) -> ControlFlowPolicy {
        let m = compile_source("t", src, &CodegenOptions::default())
            .unwrap_or_else(|e| panic!("{e}"));
        generate_single(&m, 0)
    }

    #[test]
    fn union_find_merges_transitively() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        uf.union(3, 4);
        uf.union(2, 3);
        assert_eq!(uf.find(0), uf.find(4));
    }

    #[test]
    fn indirect_call_targets_type_matched_functions_only() {
        let p = policy_of(
            "int good(int x) { return x; }\n\
             int also_good(int x) { return x + 1; }\n\
             float wrong(float x) { return x; }\n\
             int main(void) {\n\
               int (*f)(int); float (*g)(float);\n\
               f = &good; f = &also_good; g = &wrong;\n\
               int r = f(1); float s = g(2.0);\n\
               return r;\n\
             }",
        );
        let call = p
            .bary
            .iter()
            .find(|b| b.targets.len() == 2)
            .expect("int(int) call should have exactly the two int(int) entries");
        // And the float call has exactly one target.
        assert!(p.bary.iter().any(|b| b.targets.len() == 1));
        assert_eq!(call.targets.len(), 2);
    }

    #[test]
    fn returns_target_their_callers_sites() {
        let p = policy_of(
            "int h(int x) { return x; }\n\
             int main(void) { int a = h(1); int b = h(2); return a + b; }",
        );
        // h's return has two return sites (the two calls).
        let ret = p
            .bary
            .iter()
            .find(|b| b.targets.len() == 2)
            .expect("h's return targets both sites");
        assert_eq!(ret.targets.len(), 2);
        for t in &ret.targets {
            assert_eq!(t % 4, 0, "return sites are aligned");
        }
    }

    #[test]
    fn tail_calls_extend_return_targets_transitively() {
        // main calls g; g tail-calls h; so h's return may return to main's
        // site after the call to g.
        let p = policy_of(
            "int h(int x) { return x; }\n\
             int g(int y) { return h(y); }\n\
             int main(void) { int a = g(5); return a; }",
        );
        // h's return must include the return site after `g(5)` in main.
        // Find h's return branch: it is a Return branch whose target set is
        // non-empty (g's return was turned into a tail jump, so g has no
        // return branch of its own; main's return has no callers).
        let returns: Vec<_> = p.bary.iter().filter(|b| !b.targets.is_empty()).collect();
        assert!(
            returns.iter().any(|b| b.targets.len() == 1),
            "h returns to main's single call site via the tail-call edge"
        );
    }

    #[test]
    fn overlapping_target_sets_merge_classes() {
        // Two pointers of the same type: their target sets coincide, one
        // class. A third pointer of a different type: separate class.
        let p = policy_of(
            "int a(int x) { return x; }\n\
             int b(int x) { return x; }\n\
             float c(float x) { return x; }\n\
             int main(void) {\n\
               int (*f)(int); int (*g)(int); float (*h)(float);\n\
               f = &a; g = &b; h = &c;\n\
               int r = f(1); r = r + g(2); float s = h(3.0);\n\
               return r;\n\
             }",
        );
        // Branches with identical target sets must share an ECN; branches
        // with disjoint sets must not.
        for x in &p.bary {
            for y in &p.bary {
                if x.targets.is_empty() || y.targets.is_empty() {
                    continue;
                }
                if x.targets == y.targets {
                    assert_eq!(x.ecn, y.ecn);
                } else if x.targets.is_disjoint(&y.targets) {
                    assert_ne!(x.ecn, y.ecn);
                }
            }
        }
        // Classes: {a,b} entries; {c} entry; {f(1),g(2)} return sites
        // (a's and b's returns, merged); {h(3.0)} return site (c's return).
        assert_eq!(p.stats.eqcs, 4);
    }

    #[test]
    fn stats_count_branches_targets_classes() {
        let p = policy_of(
            "int h(int x) { return x; }\n\
             int main(void) { int a = h(1); return a; }",
        );
        assert!(p.stats.ibs >= 2, "h's return and main's return");
        assert!(p.stats.ibts >= 1);
        assert!(p.stats.eqcs >= 1);
        assert_eq!(p.stats.ibts, p.tary.len());
    }

    #[test]
    fn longjmp_targets_all_setjmp_sites() {
        let p = policy_of(
            "int run(int* env) {\n\
               if (setjmp(env)) { return 1; }\n\
               longjmp(env, 2);\n\
               return 0;\n\
             }",
        );
        // The longjmp branch targets exactly the setjmp landing site.
        let lj = p
            .bary
            .iter()
            .find(|b| b.targets.len() == 1 && b.targets.iter().all(|t| t % 4 == 0))
            .expect("longjmp branch present");
        assert_eq!(lj.targets.len(), 1);
    }

    #[test]
    fn unused_function_address_is_not_a_target() {
        let p = policy_of(
            "int lonely(int x) { return x; }\n\
             int main(void) { int r = lonely(1); return r + 1; }",
        );
        // lonely is called directly and never address-taken, so its entry
        // is not an indirect-branch target: the only targets in the policy
        // are return sites.
        let entries: Vec<u64> = p.tary.keys().copied().collect();
        // lonely's return branch targets the single return site in main.
        let ret = p.bary.iter().find(|b| b.targets.len() == 1).expect("lonely's return");
        assert!(entries.contains(ret.targets.iter().next().unwrap()));
        // Two returns total (lonely's and main's), no indirect calls.
        assert_eq!(p.bary.len(), 2);
        // main's return has no callers -> empty target set.
        assert!(p.bary.iter().any(|b| b.targets.is_empty()));
    }

    #[test]
    fn cross_module_linking_unions_policies() {
        // Module A defines and exports f; module B takes f's address and
        // calls it indirectly.
        let a = compile_source(
            "a",
            "int f(int x) { return x + 1; }",
            &CodegenOptions::default(),
        )
        .unwrap();
        let b = compile_source(
            "b",
            "int f(int x);\n\
             int main(void) { int (*p)(int); p = &f; int r = p(1); return r; }",
            &CodegenOptions::default(),
        )
        .unwrap();
        let policy = generate(&[
            Placed { module: &a, code_base: 0x0 },
            Placed { module: &b, code_base: 0x10000 },
        ]);
        // B's indirect call targets f's entry in module A's range.
        let call = policy
            .bary
            .iter()
            .find(|br| br.module == 1 && !br.targets.is_empty() && br.targets.iter().all(|t| *t < 0x10000))
            .expect("indirect call in B targeting A");
        assert_eq!(call.targets.len(), 1);
        // And f's return (module 0) targets the return site in B (>= 0x10000).
        let ret = policy
            .bary
            .iter()
            .find(|br| br.module == 0 && br.targets.iter().any(|t| *t >= 0x10000))
            .expect("f's return reaches B's call site");
        assert!(!ret.targets.is_empty());
    }

    #[test]
    fn empty_target_branches_get_fresh_classes() {
        // main's return has no callers: empty target set, unique ECN.
        let p = policy_of("int main(void) { return 0; }");
        assert_eq!(p.bary.len(), 1);
        assert!(p.bary[0].targets.is_empty());
        // Its ECN is outside the target classes.
        assert!(p.tary.values().all(|e| *e != p.bary[0].ecn));
    }

    #[test]
    fn policy_lookups_feed_update_transactions() {
        let p = policy_of(
            "int h(int x) { return x; }\n\
             int main(void) { int a = h(1); return a; }",
        );
        let (tary, bary) = policy_lookups(&p);
        for (addr, ecn) in &p.tary {
            assert_eq!(tary(*addr), Some(*ecn));
        }
        assert_eq!(bary(0), Some(p.bary[0].ecn));
        assert_eq!(bary(p.bary.len()), None);
        assert_eq!(tary(0xdead_beef), None);
    }
}
